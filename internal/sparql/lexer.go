package sparql

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

type tokKind int

const (
	tEOF     tokKind = iota
	tKeyword         // upper-cased bare word: SELECT, WHERE, FILTER, ...
	tVar             // ?name or $name (text holds name without sigil)
	tIRIRef          // <...>
	tPName           // prefixed name incl. colon
	tBlank           // _:label
	tString          // string literal, decoded
	tLangTag         // @tag
	tInteger
	tDecimal
	tDouble
	tA // the keyword 'a' (kept distinct from tKeyword to avoid case folding)
	tDot
	tSemicolon
	tComma
	tLBrace
	tRBrace
	tLParen
	tRParen
	tLBracket
	tRBracket
	tHatHat
	tEq     // =
	tNe     // !=
	tLt     // <  (disambiguated from IRIRef by lexical context)
	tGt     // >
	tLe     // <=
	tGe     // >=
	tAndAnd // &&
	tOrOr   // ||
	tBang   // !
	tPlus   // +
	tMinus  // -
	tStar   // *
	tSlash  // /
	tPipe   // |
	tCaret  // ^
)

type sparqlToken struct {
	kind tokKind
	text string
	line int
}

func (t sparqlToken) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// sparqlLexer tokenizes a SPARQL query string. The '<' ambiguity (IRI
// reference versus less-than) is resolved by lookahead: '<' starts an
// IRI reference iff the characters up to the matching '>' contain no
// whitespace and no '='.
type sparqlLexer struct {
	src  string
	pos  int
	line int
}

func newSparqlLexer(src string) *sparqlLexer {
	return &sparqlLexer{src: src, line: 1}
}

func (l *sparqlLexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sparql: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *sparqlLexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\r':
			l.pos++
		case '\n':
			l.pos++
			l.line++
		case '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func (l *sparqlLexer) at(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *sparqlLexer) next() (sparqlToken, error) {
	l.skipSpace()
	start := l.line
	if l.pos >= len(l.src) {
		return sparqlToken{kind: tEOF, line: start}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '<':
		if l.looksLikeIRI() {
			return l.lexIRIRef()
		}
		if l.at(1) == '=' {
			l.pos += 2
			return sparqlToken{tLe, "<=", start}, nil
		}
		l.pos++
		return sparqlToken{tLt, "<", start}, nil
	case '>':
		if l.at(1) == '=' {
			l.pos += 2
			return sparqlToken{tGe, ">=", start}, nil
		}
		l.pos++
		return sparqlToken{tGt, ">", start}, nil
	case '?', '$':
		return l.lexVar()
	case '"', '\'':
		return l.lexString(c)
	case '@':
		return l.lexLangTag()
	case '_':
		if l.at(1) == ':' {
			return l.lexBlank()
		}
	case '{':
		l.pos++
		return sparqlToken{tLBrace, "{", start}, nil
	case '}':
		l.pos++
		return sparqlToken{tRBrace, "}", start}, nil
	case '(':
		l.pos++
		return sparqlToken{tLParen, "(", start}, nil
	case ')':
		l.pos++
		return sparqlToken{tRParen, ")", start}, nil
	case '[':
		l.pos++
		return sparqlToken{tLBracket, "[", start}, nil
	case ']':
		l.pos++
		return sparqlToken{tRBracket, "]", start}, nil
	case '.':
		if d := l.at(1); d >= '0' && d <= '9' {
			return l.lexNumber()
		}
		l.pos++
		return sparqlToken{tDot, ".", start}, nil
	case ';':
		l.pos++
		return sparqlToken{tSemicolon, ";", start}, nil
	case ',':
		l.pos++
		return sparqlToken{tComma, ",", start}, nil
	case '^':
		if l.at(1) == '^' {
			l.pos += 2
			return sparqlToken{tHatHat, "^^", start}, nil
		}
		l.pos++
		return sparqlToken{tCaret, "^", start}, nil
	case '=':
		l.pos++
		return sparqlToken{tEq, "=", start}, nil
	case '!':
		if l.at(1) == '=' {
			l.pos += 2
			return sparqlToken{tNe, "!=", start}, nil
		}
		l.pos++
		return sparqlToken{tBang, "!", start}, nil
	case '&':
		if l.at(1) == '&' {
			l.pos += 2
			return sparqlToken{tAndAnd, "&&", start}, nil
		}
		return sparqlToken{}, l.errf("single '&'")
	case '|':
		if l.at(1) == '|' {
			l.pos += 2
			return sparqlToken{tOrOr, "||", start}, nil
		}
		l.pos++
		return sparqlToken{tPipe, "|", start}, nil
	case '+':
		l.pos++
		return sparqlToken{tPlus, "+", start}, nil
	case '-':
		l.pos++
		return sparqlToken{tMinus, "-", start}, nil
	case '*':
		l.pos++
		return sparqlToken{tStar, "*", start}, nil
	case '/':
		l.pos++
		return sparqlToken{tSlash, "/", start}, nil
	}
	if c >= '0' && c <= '9' {
		return l.lexNumber()
	}
	return l.lexWord()
}

// looksLikeIRI decides whether '<' at the current position begins an
// IRI reference.
func (l *sparqlLexer) looksLikeIRI() bool {
	for j := l.pos + 1; j < len(l.src); j++ {
		switch l.src[j] {
		case '>':
			return true
		case ' ', '\t', '\n', '\r', '=', '"', '{', '}':
			return false
		}
	}
	return false
}

func (l *sparqlLexer) lexIRIRef() (sparqlToken, error) {
	start := l.line
	l.pos++
	j := l.pos
	for j < len(l.src) && l.src[j] != '>' {
		j++
	}
	if j >= len(l.src) {
		return sparqlToken{}, l.errf("unterminated IRI reference")
	}
	text := l.src[l.pos:j]
	l.pos = j + 1
	return sparqlToken{tIRIRef, text, start}, nil
}

func (l *sparqlLexer) lexVar() (sparqlToken, error) {
	start := l.line
	l.pos++
	j := l.pos
	for j < len(l.src) && isNameChar(l.src[j]) {
		j++
	}
	if j == l.pos {
		return sparqlToken{}, l.errf("empty variable name")
	}
	name := l.src[l.pos:j]
	l.pos = j
	return sparqlToken{tVar, name, start}, nil
}

func (l *sparqlLexer) lexString(quote byte) (sparqlToken, error) {
	start := l.line
	long := false
	if l.at(1) == quote && l.at(2) == quote {
		long = true
		l.pos += 3
	} else {
		l.pos++
	}
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			if !long {
				l.pos++
				return sparqlToken{tString, b.String(), start}, nil
			}
			if l.at(1) == quote && l.at(2) == quote {
				l.pos += 3
				return sparqlToken{tString, b.String(), start}, nil
			}
			b.WriteByte(c)
			l.pos++
			continue
		}
		if c == '\\' {
			esc := l.at(1)
			switch esc {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case '"', '\'', '\\':
				b.WriteByte(esc)
			default:
				return sparqlToken{}, l.errf("bad escape \\%c", esc)
			}
			l.pos += 2
			continue
		}
		if c == '\n' {
			if !long {
				return sparqlToken{}, l.errf("newline in string")
			}
			l.line++
		}
		b.WriteByte(c)
		l.pos++
	}
	return sparqlToken{}, l.errf("unterminated string")
}

func (l *sparqlLexer) lexLangTag() (sparqlToken, error) {
	start := l.line
	l.pos++
	j := l.pos
	for j < len(l.src) && (isAlphaByte(l.src[j]) || l.src[j] == '-' || (l.src[j] >= '0' && l.src[j] <= '9')) {
		j++
	}
	if j == l.pos {
		return sparqlToken{}, l.errf("empty language tag")
	}
	tag := l.src[l.pos:j]
	l.pos = j
	return sparqlToken{tLangTag, tag, start}, nil
}

func (l *sparqlLexer) lexBlank() (sparqlToken, error) {
	start := l.line
	l.pos += 2
	j := l.pos
	for j < len(l.src) && isNameChar(l.src[j]) {
		j++
	}
	if j == l.pos {
		return sparqlToken{}, l.errf("empty blank node label")
	}
	label := l.src[l.pos:j]
	l.pos = j
	return sparqlToken{tBlank, label, start}, nil
}

func (l *sparqlLexer) lexNumber() (sparqlToken, error) {
	start := l.line
	j := l.pos
	digits := 0
	for j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
		j++
		digits++
	}
	kind := tInteger
	if j < len(l.src) && l.src[j] == '.' && j+1 < len(l.src) && l.src[j+1] >= '0' && l.src[j+1] <= '9' {
		kind = tDecimal
		j++
		for j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
			j++
			digits++
		}
	}
	if j < len(l.src) && (l.src[j] == 'e' || l.src[j] == 'E') {
		kind = tDouble
		j++
		if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
			j++
		}
		exp := 0
		for j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
			j++
			exp++
		}
		if exp == 0 {
			return sparqlToken{}, l.errf("malformed exponent")
		}
	}
	if digits == 0 {
		return sparqlToken{}, l.errf("malformed number")
	}
	text := l.src[l.pos:j]
	l.pos = j
	return sparqlToken{kind, text, start}, nil
}

func (l *sparqlLexer) lexWord() (sparqlToken, error) {
	start := l.line
	j := l.pos
	colon := -1
	for j < len(l.src) {
		c := l.src[j]
		if c == ':' {
			colon = j
			j++
			continue
		}
		if isNameChar(c) || c == '.' {
			j++
			continue
		}
		if c >= 0x80 {
			_, size := utf8.DecodeRuneInString(l.src[j:])
			j += size
			continue
		}
		break
	}
	if j == l.pos {
		return sparqlToken{}, l.errf("unexpected character %q", l.src[l.pos])
	}
	word := l.src[l.pos:j]
	// Trailing dots close statements, not names.
	for strings.HasSuffix(word, ".") {
		word = word[:len(word)-1]
		j--
	}
	l.pos = j
	if colon >= 0 {
		return sparqlToken{tPName, word, start}, nil
	}
	if word == "a" {
		return sparqlToken{tA, "a", start}, nil
	}
	return sparqlToken{tKeyword, strings.ToUpper(word), start}, nil
}

func isAlphaByte(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool {
	return isAlphaByte(c) || (c >= '0' && c <= '9') || c == '_' || c == '-' || c >= 0x80
}
