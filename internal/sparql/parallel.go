package sparql

import (
	"sync"

	"repro/internal/rdf"
)

// This file is the engine's worker-pool layer. Every operator here
// follows the same scheme: partition the input solution sequence (or
// branch list) into contiguous chunks, evaluate each chunk on its own
// worker goroutine against the shared store, and concatenate the
// per-chunk outputs in chunk order. Because chunks are contiguous and
// merges preserve chunk order, results are identical to the sequential
// evaluation at every parallelism level; parallelism 1 short-circuits
// into the unmodified sequential code paths.
//
// Workers evaluate on a copy of the run value: the Engine, varTable and
// graph context are shared read-only at evaluation time (collectVars
// pre-registers every variable, so varTable.slot never mutates during
// evaluation), but nested EXISTS evaluation saves and restores run.ctx,
// which must stay worker-local.

// minParallelRows is the input size below which row-partitioned
// operators stay sequential; goroutine startup and merge overhead beat
// the win on small solution sequences.
const minParallelRows = 128

// minChunkRows bounds how finely a solution sequence is split, so that
// each worker amortizes its startup cost.
const minChunkRows = 64

// workersFor returns the number of workers to use for n input items.
func (r *run) workersFor(n int) int {
	p := r.e.parallelism
	if p <= 1 || n < minParallelRows {
		return 1
	}
	if maxW := n / minChunkRows; p > maxW {
		p = maxW
	}
	return p
}

// chunkBounds splits n items into w contiguous, near-equal chunks,
// returning the [lo, hi) bounds of each. The split depends only on
// (n, w), keeping partitioning deterministic.
func chunkBounds(n, w int) [][2]int {
	bounds := make([][2]int, 0, w)
	size, rem := n/w, n%w
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + size
		if i < rem {
			hi++
		}
		bounds = append(bounds, [2]int{lo, hi})
		lo = hi
	}
	return bounds
}

// runChunks executes fn for each chunk on its own goroutine and waits.
// fn receives the chunk index and its [lo, hi) bounds and must write
// results only into its own chunk's slots.
func runChunks(bounds [][2]int, fn func(i, lo, hi int)) {
	var wg sync.WaitGroup
	for i, b := range bounds {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			fn(i, lo, hi)
		}(i, b[0], b[1])
	}
	wg.Wait()
}

// concatSolutions flattens per-chunk outputs in chunk order.
func concatSolutions(outs [][]solution) []solution {
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	if total == 0 {
		return nil
	}
	merged := make([]solution, 0, total)
	for _, o := range outs {
		merged = append(merged, o...)
	}
	return merged
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// joinPatternPar is the parallel-aware joinPatternOwned: the outer
// solution sequence is partitioned across workers, each joining its
// chunk through its own store iterators.
func (r *run) joinPatternPar(tp TriplePattern, rows []solution, ctx graphCtx, owned bool) ([]solution, error) {
	w := r.workersFor(len(rows))
	if w == 1 {
		return r.joinPatternOwned(tp, rows, ctx, owned)
	}
	outs := make([][]solution, w)
	errs := make([]error, w)
	runChunks(chunkBounds(len(rows), w), func(i, lo, hi int) {
		wr := *r
		outs[i], errs[i] = wr.joinPatternOwned(tp, rows[lo:hi], ctx, owned)
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return concatSolutions(outs), nil
}

// filterRows keeps the rows whose filter expression evaluates to a true
// effective boolean value (evaluation errors eliminate the row). On
// cancellation it returns early with what it has; the coordinator's
// next check converts that into an error.
func (r *run) filterRows(expr Expression, rows []solution) []solution {
	var kept []solution
	mark := 0
	for ri, row := range rows {
		if ri%cancelCheckRows == 0 {
			if r.cancelled() || r.overMem() {
				break
			}
			// Kept rows are references into the input, so FILTER charges
			// only the keeping container's slots.
			mark = accountKept(r, kept, mark)
		}
		v, err := r.evalExpr(expr, row)
		if err != nil {
			continue
		}
		if b, err := ebv(v); err == nil && b {
			kept = append(kept, row)
		}
	}
	accountKept(r, kept, mark)
	return kept
}

// filterRowsPar partitions FILTER evaluation across workers.
func (r *run) filterRowsPar(expr Expression, rows []solution) []solution {
	w := r.workersFor(len(rows))
	if w == 1 {
		return r.filterRows(expr, rows)
	}
	outs := make([][]solution, w)
	runChunks(chunkBounds(len(rows), w), func(i, lo, hi int) {
		wr := *r
		outs[i] = wr.filterRows(expr, rows[lo:hi])
	})
	return concatSolutions(outs)
}

// optionalRows evaluates a general OPTIONAL group per left row: the row
// survives unextended when the pattern yields nothing.
func (r *run) optionalRows(p GroupGraphPattern, rows []solution, ctx graphCtx) ([]solution, error) {
	var out []solution
	mark := 0
	for ri, row := range rows {
		if ri%cancelCheckRows == 0 {
			if r.cancelled() {
				return nil, r.cancelErr()
			}
			if mark = accountKept(r, out, mark); r.overMem() {
				return nil, r.memErr()
			}
		}
		ext, err := r.evalGroup(p, []solution{row}, ctx)
		if err != nil {
			return nil, err
		}
		if len(ext) == 0 {
			out = append(out, row)
		} else {
			out = append(out, ext...)
		}
	}
	accountKept(r, out, mark)
	return out, nil
}

// optionalPar partitions general OPTIONAL evaluation across workers.
func (r *run) optionalPar(p GroupGraphPattern, rows []solution, ctx graphCtx) ([]solution, error) {
	w := r.workersFor(len(rows))
	if w == 1 {
		return r.optionalRows(p, rows, ctx)
	}
	outs := make([][]solution, w)
	errs := make([]error, w)
	runChunks(chunkBounds(len(rows), w), func(i, lo, hi int) {
		wr := *r
		outs[i], errs[i] = wr.optionalRows(p, rows[lo:hi], ctx)
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return concatSolutions(outs), nil
}

// optionalSinglePar partitions the single-pattern OPTIONAL fast path
// across workers.
func (r *run) optionalSinglePar(tp TriplePattern, rows []solution, ctx graphCtx) []solution {
	w := r.workersFor(len(rows))
	if w == 1 {
		return r.optionalSingle(tp, rows, ctx)
	}
	outs := make([][]solution, w)
	runChunks(chunkBounds(len(rows), w), func(i, lo, hi int) {
		wr := *r
		outs[i] = wr.optionalSingle(tp, rows[lo:hi], ctx)
	})
	return concatSolutions(outs)
}

// unionPar evaluates independent UNION branches concurrently, keeping
// branch output order. The shared input rows are read-only: group
// evaluation never mutates its input solutions.
func (r *run) unionPar(branches []GroupGraphPattern, rows []solution, ctx graphCtx) ([]solution, error) {
	if r.e.parallelism <= 1 || len(branches) < 2 {
		var out []solution
		for _, b := range branches {
			ext, err := r.evalGroup(b, rows, ctx)
			if err != nil {
				return nil, err
			}
			out = append(out, ext...)
		}
		return out, nil
	}
	outs := make([][]solution, len(branches))
	errs := make([]error, len(branches))
	var wg sync.WaitGroup
	sem := make(chan struct{}, r.e.parallelism)
	for i, b := range branches {
		wg.Add(1)
		go func(i int, b GroupGraphPattern) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			wr := *r
			outs[i], errs[i] = wr.evalGroup(b, rows, ctx)
		}(i, b)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return concatSolutions(outs), nil
}

// minusRows removes rows compatible with (and sharing a variable with)
// any right-side solution.
func (r *run) minusRows(rows, right []solution) []solution {
	var kept []solution
	mark := 0
	for ri, row := range rows {
		if ri%cancelCheckRows == 0 {
			if r.cancelled() || r.overMem() {
				break
			}
			mark = accountKept(r, kept, mark)
		}
		excluded := false
		for _, rr := range right {
			if compatibleSharing(row, rr) {
				excluded = true
				break
			}
		}
		if !excluded {
			kept = append(kept, row)
		}
	}
	accountKept(r, kept, mark)
	return kept
}

// minusRowsPar partitions the MINUS exclusion scan across workers; the
// right side is shared read-only.
func (r *run) minusRowsPar(rows, right []solution) []solution {
	w := r.workersFor(len(rows))
	if w == 1 || len(right) == 0 {
		return r.minusRows(rows, right)
	}
	outs := make([][]solution, w)
	runChunks(chunkBounds(len(rows), w), func(i, lo, hi int) {
		wr := *r
		outs[i] = wr.minusRows(rows[lo:hi], right)
	})
	return concatSolutions(outs)
}

// accumulateGroupsPar is the parallel hash GROUP BY: each worker builds
// a partial aggregation map over its chunk, and the partials are merged
// in chunk order. Merging appends each partial's keys in its local
// first-occurrence order while skipping keys already merged, which
// reproduces exactly the global first-occurrence order of the
// sequential accumulation; rows within a group concatenate in chunk
// order, i.e. input order.
func (r *run) accumulateGroupsPar(exprs []Expression, rows []solution) ([]string, map[string]*aggGroup) {
	w := r.workersFor(len(rows))
	if w == 1 {
		return r.accumulateGroups(exprs, rows)
	}
	orders := make([][]string, w)
	partials := make([]map[string]*aggGroup, w)
	runChunks(chunkBounds(len(rows), w), func(i, lo, hi int) {
		wr := *r
		orders[i], partials[i] = wr.accumulateGroups(exprs, rows[lo:hi])
	})
	order, groups := orders[0], partials[0]
	for i := 1; i < w; i++ {
		for _, k := range orders[i] {
			p := partials[i][k]
			if g, ok := groups[k]; ok {
				g.rows = append(g.rows, p.rows...)
			} else {
				groups[k] = p
				order = append(order, k)
			}
		}
	}
	return order, groups
}

// groupRowsPar evaluates HAVING and the aggregate projection of each
// group, partitioning the (independent) groups across workers. Output
// rows keep group order; groups eliminated by HAVING leave no row.
func (r *run) groupRowsPar(q *Query, order []string, groups map[string]*aggGroup) [][]rdf.Term {
	w := r.workersFor(len(order))
	if w == 1 {
		var out [][]rdf.Term
		for ki, k := range order {
			if ki%cancelCheckRows == 0 && r.cancelled() {
				break
			}
			if orow, ok := r.groupRow(q, groups[k]); ok {
				out = append(out, orow)
			}
		}
		return out
	}
	outs := make([][][]rdf.Term, w)
	runChunks(chunkBounds(len(order), w), func(i, lo, hi int) {
		wr := *r
		for ki, k := range order[lo:hi] {
			if ki%cancelCheckRows == 0 && wr.cancelled() {
				break
			}
			if orow, ok := wr.groupRow(q, groups[k]); ok {
				outs[i] = append(outs[i], orow)
			}
		}
	})
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	if total == 0 {
		return nil
	}
	merged := make([][]rdf.Term, 0, total)
	for _, o := range outs {
		merged = append(merged, o...)
	}
	return merged
}
