package sparql

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// parallelFixture builds a store large enough that every parallel
// operator path exceeds minParallelRows: n items with type, value,
// group, and (for even items) a label; half the items are "flagged" in
// a separate pattern used by MINUS and UNION.
func parallelFixture(n int) *store.Store {
	st := store.New()
	typ := rdf.NewIRI("http://ex/type")
	item := rdf.NewIRI("http://ex/Item")
	val := rdf.NewIRI("http://ex/value")
	grp := rdf.NewIRI("http://ex/group")
	lbl := rdf.NewIRI("http://ex/label")
	flag := rdf.NewIRI("http://ex/flagged")
	var ts []rdf.Triple
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://ex/item/%04d", i))
		ts = append(ts,
			rdf.NewTriple(s, typ, item),
			rdf.NewTriple(s, val, rdf.NewInteger(int64(i%97))),
			rdf.NewTriple(s, grp, rdf.NewIRI(fmt.Sprintf("http://ex/g/%d", i%13))),
		)
		if i%2 == 0 {
			ts = append(ts, rdf.NewTriple(s, lbl, rdf.NewLiteral(fmt.Sprintf("label %d", i))))
		}
		if i%3 == 0 {
			ts = append(ts, rdf.NewTriple(s, flag, rdf.NewBoolean(true)))
		}
	}
	st.InsertTriples(rdf.Term{}, ts)
	return st
}

// parallelEquivalenceQueries exercise each parallelized operator: BGP
// join chains, FILTER, single-pattern and general OPTIONAL, UNION,
// MINUS, and hash GROUP BY with HAVING and aggregate projections.
var parallelEquivalenceQueries = []string{
	// BGP join + FILTER.
	`SELECT ?s ?v WHERE {
		?s <http://ex/type> <http://ex/Item> ; <http://ex/value> ?v .
		FILTER(?v > 40)
	} ORDER BY ?s`,
	// Single-pattern OPTIONAL (fast path).
	`SELECT ?s ?l WHERE {
		?s <http://ex/type> <http://ex/Item> .
		OPTIONAL { ?s <http://ex/label> ?l }
	} ORDER BY ?s`,
	// General OPTIONAL (two patterns inside).
	`SELECT ?s ?l ?v WHERE {
		?s <http://ex/type> <http://ex/Item> .
		OPTIONAL { ?s <http://ex/label> ?l . ?s <http://ex/value> ?v }
	} ORDER BY ?s`,
	// UNION over two branches.
	`SELECT ?s WHERE {
		{ ?s <http://ex/flagged> true } UNION { ?s <http://ex/label> ?l }
	} ORDER BY ?s`,
	// MINUS exclusion.
	`SELECT ?s WHERE {
		?s <http://ex/type> <http://ex/Item> .
		MINUS { ?s <http://ex/flagged> true }
	} ORDER BY ?s`,
	// Hash GROUP BY with aggregates and HAVING.
	`SELECT ?g (SUM(?v) AS ?total) (COUNT(?s) AS ?n) WHERE {
		?s <http://ex/group> ?g ; <http://ex/value> ?v .
	} GROUP BY ?g HAVING(SUM(?v) > 100) ORDER BY ?g`,
	// Grouping without ORDER BY: group order must match exactly.
	`SELECT ?g (AVG(?v) AS ?avg) WHERE {
		?s <http://ex/group> ?g ; <http://ex/value> ?v .
	} GROUP BY ?g`,
	// FILTER with EXISTS (worker-local graph context).
	`SELECT ?s WHERE {
		?s <http://ex/value> ?v .
		FILTER EXISTS { ?s <http://ex/label> ?l }
	} ORDER BY ?s`,
	// DISTINCT projection over a join.
	`SELECT DISTINCT ?g WHERE {
		?s <http://ex/group> ?g ; <http://ex/flagged> true .
	}`,
}

// TestParallelMatchesSequential runs each operator query at several
// parallelism levels and requires results identical (including row
// order) to the sequential engine.
func TestParallelMatchesSequential(t *testing.T) {
	st := parallelFixture(1500)
	seq := NewEngine(st, WithParallelism(1))
	for _, par := range []int{2, 4, 8} {
		eng := NewEngine(st, WithParallelism(par))
		for qi, src := range parallelEquivalenceQueries {
			want, err := seq.QueryString(src)
			if err != nil {
				t.Fatalf("query %d sequential: %v", qi, err)
			}
			got, err := eng.QueryString(src)
			if err != nil {
				t.Fatalf("query %d par=%d: %v", qi, par, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("query %d: par=%d results differ from sequential\nwant %d rows, got %d rows",
					qi, par, len(want.Rows), len(got.Rows))
			}
		}
	}
}

// TestWithParallelismDefaults pins the option semantics: <= 0 selects
// GOMAXPROCS, and the default engine is parallel.
func TestWithParallelismDefaults(t *testing.T) {
	st := store.New()
	if got := NewEngine(st).Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default parallelism = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := NewEngine(st, WithParallelism(0)).Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("WithParallelism(0) = %d, want GOMAXPROCS", got)
	}
	if got := NewEngine(st, WithParallelism(3)).Parallelism(); got != 3 {
		t.Errorf("WithParallelism(3) = %d", got)
	}
	e := NewEngine(st, WithParallelism(5))
	e.SetParallelism(-1)
	if got := e.Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("SetParallelism(-1) = %d, want GOMAXPROCS", got)
	}
}

// TestChunkBounds pins the deterministic partitioning.
func TestChunkBounds(t *testing.T) {
	for _, tc := range []struct{ n, w int }{{10, 3}, {128, 4}, {129, 4}, {7, 7}, {1000, 8}} {
		bounds := chunkBounds(tc.n, tc.w)
		if len(bounds) != tc.w {
			t.Fatalf("chunkBounds(%d,%d): %d chunks", tc.n, tc.w, len(bounds))
		}
		prev := 0
		for _, b := range bounds {
			if b[0] != prev || b[1] < b[0] {
				t.Fatalf("chunkBounds(%d,%d): bad bounds %v", tc.n, tc.w, bounds)
			}
			prev = b[1]
		}
		if prev != tc.n {
			t.Fatalf("chunkBounds(%d,%d): covers %d items", tc.n, tc.w, prev)
		}
	}
}
