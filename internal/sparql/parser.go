package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// parser holds parsing state for one query or update string.
type parser struct {
	lex      *sparqlLexer
	tok      sparqlToken
	prefixes *rdf.PrefixMap
	bnodeSeq int
}

// ParseQuery parses a SPARQL query (SELECT, ASK, or CONSTRUCT).
func ParseQuery(src string) (*Query, error) {
	p := &parser{lex: newSparqlLexer(src), prefixes: rdf.NewPrefixMap()}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.prologue(); err != nil {
		return nil, err
	}
	q, err := p.queryBody()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tEOF {
		return nil, p.errf("trailing input after query: %s", p.tok)
	}
	q.Prefixes = p.prefixes
	return q, nil
}

// ParseUpdate parses a SPARQL update request (a ';'-separated sequence
// of operations).
func ParseUpdate(src string) (*Update, error) {
	p := &parser{lex: newSparqlLexer(src), prefixes: rdf.NewPrefixMap()}
	if err := p.advance(); err != nil {
		return nil, err
	}
	u := &Update{Prefixes: p.prefixes}
	for {
		if err := p.prologue(); err != nil {
			return nil, err
		}
		if p.tok.kind == tEOF {
			break
		}
		op, err := p.updateOperation()
		if err != nil {
			return nil, err
		}
		u.Operations = append(u.Operations, op)
		if p.tok.kind == tSemicolon {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if p.tok.kind != tEOF {
		return nil, p.errf("trailing input after update: %s", p.tok)
	}
	return u, nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sparql: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tKeyword || p.tok.text != kw {
		return p.errf("expected %s, got %s", kw, p.tok)
	}
	return p.advance()
}

func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tKeyword && p.tok.text == kw
}

func (p *parser) expect(k tokKind, what string) error {
	if p.tok.kind != k {
		return p.errf("expected %s, got %s", what, p.tok)
	}
	return p.advance()
}

func (p *parser) prologue() error {
	for {
		switch {
		case p.isKeyword("PREFIX"):
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tPName || !strings.HasSuffix(p.tok.text, ":") {
				return p.errf("expected prefix declaration, got %s", p.tok)
			}
			prefix := strings.TrimSuffix(p.tok.text, ":")
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tIRIRef {
				return p.errf("expected namespace IRI, got %s", p.tok)
			}
			p.prefixes.Bind(prefix, p.tok.text)
			if err := p.advance(); err != nil {
				return err
			}
		case p.isKeyword("BASE"):
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tIRIRef {
				return p.errf("expected base IRI, got %s", p.tok)
			}
			// Base resolution is rarely needed by generated queries;
			// record nothing and accept absolute IRIs only.
			if err := p.advance(); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

func (p *parser) queryBody() (*Query, error) {
	switch {
	case p.isKeyword("SELECT"):
		return p.selectQuery()
	case p.isKeyword("ASK"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		q := &Query{Form: FormAsk, Limit: -1}
		if p.isKeyword("WHERE") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		w, err := p.groupGraphPattern()
		if err != nil {
			return nil, err
		}
		q.Where = w
		return q, nil
	case p.isKeyword("CONSTRUCT"):
		return p.constructQuery()
	case p.isKeyword("DESCRIBE"):
		return p.describeQuery()
	default:
		return nil, p.errf("expected SELECT, ASK, CONSTRUCT or DESCRIBE, got %s", p.tok)
	}
}

func (p *parser) selectQuery() (*Query, error) {
	if err := p.advance(); err != nil { // SELECT
		return nil, err
	}
	q := &Query{Form: FormSelect, Limit: -1}
	if p.isKeyword("DISTINCT") {
		q.Distinct = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else if p.isKeyword("REDUCED") {
		// treated as DISTINCT-less pass-through
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind == tStar {
		q.Star = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		for {
			switch p.tok.kind {
			case tVar:
				q.Projection = append(q.Projection, SelectItem{Var: p.tok.text})
				if err := p.advance(); err != nil {
					return nil, err
				}
			case tLParen:
				if err := p.advance(); err != nil {
					return nil, err
				}
				e, err := p.expression()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("AS"); err != nil {
					return nil, err
				}
				if p.tok.kind != tVar {
					return nil, p.errf("expected variable after AS, got %s", p.tok)
				}
				name := p.tok.text
				if err := p.advance(); err != nil {
					return nil, err
				}
				if err := p.expect(tRParen, "')'"); err != nil {
					return nil, err
				}
				q.Projection = append(q.Projection, SelectItem{Var: name, Expr: e})
			default:
				if len(q.Projection) == 0 {
					return nil, p.errf("empty SELECT projection")
				}
				goto doneProjection
			}
		}
	}
doneProjection:
	if p.isKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	w, err := p.groupGraphPattern()
	if err != nil {
		return nil, err
	}
	q.Where = w
	if err := p.solutionModifiers(q); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) constructQuery() (*Query, error) {
	if err := p.advance(); err != nil { // CONSTRUCT
		return nil, err
	}
	q := &Query{Form: FormConstruct, Limit: -1}
	if err := p.expect(tLBrace, "'{'"); err != nil {
		return nil, err
	}
	for p.tok.kind != tRBrace {
		tps, err := p.triplesSameSubject()
		if err != nil {
			return nil, err
		}
		q.Template = append(q.Template, tps...)
		if p.tok.kind == tDot {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.advance(); err != nil { // '}'
		return nil, err
	}
	if p.isKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	w, err := p.groupGraphPattern()
	if err != nil {
		return nil, err
	}
	q.Where = w
	if err := p.solutionModifiers(q); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) describeQuery() (*Query, error) {
	if err := p.advance(); err != nil { // DESCRIBE
		return nil, err
	}
	q := &Query{Form: FormDescribe, Limit: -1}
	for {
		switch p.tok.kind {
		case tVar:
			q.Describe = append(q.Describe, VarTerm(p.tok.text))
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		case tIRIRef:
			q.Describe = append(q.Describe, ConstTerm(rdf.NewIRI(p.tok.text)))
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		case tPName:
			iri, err := p.prefixes.Expand(p.tok.text)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			q.Describe = append(q.Describe, ConstTerm(rdf.NewIRI(iri)))
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if len(q.Describe) == 0 {
		return nil, p.errf("DESCRIBE needs at least one resource or variable")
	}
	if p.isKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind == tLBrace {
		w, err := p.groupGraphPattern()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	return q, p.solutionModifiers(q)
}

func (p *parser) solutionModifiers(q *Query) error {
	if p.isKeyword("GROUP") {
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return err
		}
		for {
			switch p.tok.kind {
			case tVar:
				q.GroupBy = append(q.GroupBy, ExprVar{Name: p.tok.text})
				if err := p.advance(); err != nil {
					return err
				}
				continue
			case tLParen:
				if err := p.advance(); err != nil {
					return err
				}
				e, err := p.expression()
				if err != nil {
					return err
				}
				if err := p.expect(tRParen, "')'"); err != nil {
					return err
				}
				q.GroupBy = append(q.GroupBy, e)
				continue
			}
			break
		}
		if len(q.GroupBy) == 0 {
			return p.errf("empty GROUP BY")
		}
	}
	if p.isKeyword("HAVING") {
		if err := p.advance(); err != nil {
			return err
		}
		for p.tok.kind == tLParen {
			if err := p.advance(); err != nil {
				return err
			}
			e, err := p.expression()
			if err != nil {
				return err
			}
			if err := p.expect(tRParen, "')'"); err != nil {
				return err
			}
			q.Having = append(q.Having, e)
		}
		if len(q.Having) == 0 {
			return p.errf("empty HAVING")
		}
	}
	if p.isKeyword("ORDER") {
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return err
		}
		for {
			var oc OrderCondition
			switch {
			case p.isKeyword("ASC"), p.isKeyword("DESC"):
				oc.Desc = p.tok.text == "DESC"
				if err := p.advance(); err != nil {
					return err
				}
				if err := p.expect(tLParen, "'('"); err != nil {
					return err
				}
				e, err := p.expression()
				if err != nil {
					return err
				}
				if err := p.expect(tRParen, "')'"); err != nil {
					return err
				}
				oc.Expr = e
			case p.tok.kind == tVar:
				oc.Expr = ExprVar{Name: p.tok.text}
				if err := p.advance(); err != nil {
					return err
				}
			case p.tok.kind == tLParen:
				if err := p.advance(); err != nil {
					return err
				}
				e, err := p.expression()
				if err != nil {
					return err
				}
				if err := p.expect(tRParen, "')'"); err != nil {
					return err
				}
				oc.Expr = e
			default:
				goto doneOrder
			}
			q.OrderBy = append(q.OrderBy, oc)
		}
	doneOrder:
		if len(q.OrderBy) == 0 {
			return p.errf("empty ORDER BY")
		}
	}
	for {
		switch {
		case p.isKeyword("LIMIT"):
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tInteger {
				return p.errf("expected integer after LIMIT")
			}
			n, _ := strconv.Atoi(p.tok.text)
			q.Limit = n
			if err := p.advance(); err != nil {
				return err
			}
		case p.isKeyword("OFFSET"):
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tInteger {
				return p.errf("expected integer after OFFSET")
			}
			n, _ := strconv.Atoi(p.tok.text)
			q.Offset = n
			if err := p.advance(); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

// groupGraphPattern parses '{' ... '}'.
func (p *parser) groupGraphPattern() (GroupGraphPattern, error) {
	var g GroupGraphPattern
	if err := p.expect(tLBrace, "'{'"); err != nil {
		return g, err
	}
	for p.tok.kind != tRBrace {
		switch {
		case p.isKeyword("FILTER"):
			if err := p.advance(); err != nil {
				return g, err
			}
			e, err := p.constraint()
			if err != nil {
				return g, err
			}
			g.Elements = append(g.Elements, FilterElement{Expr: e})
		case p.isKeyword("BIND"):
			if err := p.advance(); err != nil {
				return g, err
			}
			if err := p.expect(tLParen, "'('"); err != nil {
				return g, err
			}
			e, err := p.expression()
			if err != nil {
				return g, err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return g, err
			}
			if p.tok.kind != tVar {
				return g, p.errf("expected variable after AS")
			}
			name := p.tok.text
			if err := p.advance(); err != nil {
				return g, err
			}
			if err := p.expect(tRParen, "')'"); err != nil {
				return g, err
			}
			g.Elements = append(g.Elements, BindElement{Var: name, Expr: e})
		case p.isKeyword("OPTIONAL"):
			if err := p.advance(); err != nil {
				return g, err
			}
			inner, err := p.groupGraphPattern()
			if err != nil {
				return g, err
			}
			g.Elements = append(g.Elements, OptionalElement{Pattern: inner})
		case p.isKeyword("MINUS"):
			if err := p.advance(); err != nil {
				return g, err
			}
			inner, err := p.groupGraphPattern()
			if err != nil {
				return g, err
			}
			g.Elements = append(g.Elements, MinusElement{Pattern: inner})
		case p.isKeyword("GRAPH"):
			if err := p.advance(); err != nil {
				return g, err
			}
			gt, err := p.varOrIRI()
			if err != nil {
				return g, err
			}
			inner, err := p.groupGraphPattern()
			if err != nil {
				return g, err
			}
			g.Elements = append(g.Elements, GraphElement{Graph: gt, Pattern: inner})
		case p.isKeyword("VALUES"):
			if err := p.advance(); err != nil {
				return g, err
			}
			v, err := p.valuesBlock()
			if err != nil {
				return g, err
			}
			g.Elements = append(g.Elements, v)
		case p.tok.kind == tLBrace:
			// nested group, subselect, or UNION chain
			el, err := p.groupOrUnionOrSubselect()
			if err != nil {
				return g, err
			}
			g.Elements = append(g.Elements, el)
		case p.tok.kind == tDot:
			if err := p.advance(); err != nil {
				return g, err
			}
		default:
			tps, err := p.triplesSameSubject()
			if err != nil {
				return g, err
			}
			for _, tp := range tps {
				g.Elements = append(g.Elements, tp)
			}
			if p.tok.kind == tDot {
				if err := p.advance(); err != nil {
					return g, err
				}
			}
		}
	}
	return g, p.advance() // consume '}'
}

func (p *parser) groupOrUnionOrSubselect() (PatternElement, error) {
	// Peek past '{' for SELECT to detect a subquery.
	save := *p.lex
	saveTok := p.tok
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.isKeyword("SELECT") {
		sub, err := p.selectQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRBrace, "'}' closing subquery"); err != nil {
			return nil, err
		}
		sub.Prefixes = p.prefixes
		return SubSelectElement{Query: sub}, nil
	}
	// Not a subquery: rewind and parse as group pattern.
	*p.lex = save
	p.tok = saveTok

	first, err := p.groupGraphPattern()
	if err != nil {
		return nil, err
	}
	if !p.isKeyword("UNION") {
		return GroupElement{Pattern: first}, nil
	}
	union := UnionElement{Branches: []GroupGraphPattern{first}}
	for p.isKeyword("UNION") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		branch, err := p.groupGraphPattern()
		if err != nil {
			return nil, err
		}
		union.Branches = append(union.Branches, branch)
	}
	return union, nil
}

func (p *parser) valuesBlock() (ValuesElement, error) {
	var v ValuesElement
	switch p.tok.kind {
	case tVar:
		v.Vars = []string{p.tok.text}
		if err := p.advance(); err != nil {
			return v, err
		}
		if err := p.expect(tLBrace, "'{'"); err != nil {
			return v, err
		}
		for p.tok.kind != tRBrace {
			t, err := p.dataTerm()
			if err != nil {
				return v, err
			}
			v.Rows = append(v.Rows, []rdf.Term{t})
		}
		return v, p.advance()
	case tLParen:
		if err := p.advance(); err != nil {
			return v, err
		}
		for p.tok.kind == tVar {
			v.Vars = append(v.Vars, p.tok.text)
			if err := p.advance(); err != nil {
				return v, err
			}
		}
		if err := p.expect(tRParen, "')'"); err != nil {
			return v, err
		}
		if err := p.expect(tLBrace, "'{'"); err != nil {
			return v, err
		}
		for p.tok.kind == tLParen {
			if err := p.advance(); err != nil {
				return v, err
			}
			var row []rdf.Term
			for p.tok.kind != tRParen {
				t, err := p.dataTerm()
				if err != nil {
					return v, err
				}
				row = append(row, t)
			}
			if err := p.advance(); err != nil {
				return v, err
			}
			if len(row) != len(v.Vars) {
				return v, p.errf("VALUES row arity %d does not match %d variables", len(row), len(v.Vars))
			}
			v.Rows = append(v.Rows, row)
		}
		if err := p.expect(tRBrace, "'}'"); err != nil {
			return v, err
		}
		return v, nil
	default:
		return v, p.errf("expected variable or '(' after VALUES")
	}
}

// dataTerm parses a ground term inside VALUES/INSERT DATA; UNDEF yields
// the zero term.
func (p *parser) dataTerm() (rdf.Term, error) {
	if p.isKeyword("UNDEF") {
		return rdf.Term{}, p.advance()
	}
	pt, err := p.graphTerm()
	if err != nil {
		return rdf.Term{}, err
	}
	if pt.IsVar {
		return rdf.Term{}, p.errf("variable not allowed in data block")
	}
	return pt.Term, nil
}

func (p *parser) varOrIRI() (PatternTerm, error) {
	switch p.tok.kind {
	case tVar:
		v := VarTerm(p.tok.text)
		return v, p.advance()
	case tIRIRef:
		t := ConstTerm(rdf.NewIRI(p.tok.text))
		return t, p.advance()
	case tPName:
		iri, err := p.prefixes.Expand(p.tok.text)
		if err != nil {
			return PatternTerm{}, p.errf("%v", err)
		}
		return ConstTerm(rdf.NewIRI(iri)), p.advance()
	default:
		return PatternTerm{}, p.errf("expected variable or IRI, got %s", p.tok)
	}
}

// triplesSameSubject parses one subject with its predicate-object list
// and returns the expanded triple patterns (blank node property lists
// become fresh internal variables).
func (p *parser) triplesSameSubject() ([]TriplePattern, error) {
	var out []TriplePattern
	var subj PatternTerm
	if p.tok.kind == tLBracket {
		// blank node property list as subject
		bn, inner, err := p.blankNodePropertyList()
		if err != nil {
			return nil, err
		}
		out = append(out, inner...)
		subj = bn
		if p.tok.kind == tDot || p.tok.kind == tRBrace {
			return out, nil
		}
	} else {
		s, err := p.graphTerm()
		if err != nil {
			return nil, err
		}
		if s.Term.IsLiteral() && !s.IsVar {
			return nil, p.errf("literal subject not allowed")
		}
		subj = s
	}
	rest, err := p.predicateObjectList(subj)
	if err != nil {
		return nil, err
	}
	return append(out, rest...), nil
}

func (p *parser) predicateObjectList(subj PatternTerm) ([]TriplePattern, error) {
	var out []TriplePattern
	for {
		pred, path, err := p.verbOrPath()
		if err != nil {
			return nil, err
		}
		for {
			obj, inner, err := p.objectTerm()
			if err != nil {
				return nil, err
			}
			out = append(out, inner...)
			tp := TriplePattern{S: subj, P: pred, O: obj, Path: path}
			out = append(out, tp)
			if p.tok.kind != tComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if p.tok.kind != tSemicolon {
			return out, nil
		}
		for p.tok.kind == tSemicolon {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if p.tok.kind == tDot || p.tok.kind == tRBrace || p.tok.kind == tRBracket {
			return out, nil
		}
	}
}

// verbOrPath parses the predicate position: a variable, or a property
// path (which may degenerate to a plain IRI).
func (p *parser) verbOrPath() (PatternTerm, *PropertyPath, error) {
	if p.tok.kind == tVar {
		v := VarTerm(p.tok.text)
		return v, nil, p.advance()
	}
	path, err := p.pathAlternative()
	if err != nil {
		return PatternTerm{}, nil, err
	}
	if path.Kind == PathIRI {
		return ConstTerm(path.IRI), nil, nil
	}
	return PatternTerm{}, path, nil
}

func (p *parser) pathAlternative() (*PropertyPath, error) {
	first, err := p.pathSequence()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tPipe {
		return first, nil
	}
	alt := &PropertyPath{Kind: PathAlternative, Sub: []*PropertyPath{first}}
	for p.tok.kind == tPipe {
		if err := p.advance(); err != nil {
			return nil, err
		}
		next, err := p.pathSequence()
		if err != nil {
			return nil, err
		}
		alt.Sub = append(alt.Sub, next)
	}
	return alt, nil
}

func (p *parser) pathSequence() (*PropertyPath, error) {
	first, err := p.pathEltOrInverse()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tSlash {
		return first, nil
	}
	seq := &PropertyPath{Kind: PathSequence, Sub: []*PropertyPath{first}}
	for p.tok.kind == tSlash {
		if err := p.advance(); err != nil {
			return nil, err
		}
		next, err := p.pathEltOrInverse()
		if err != nil {
			return nil, err
		}
		seq.Sub = append(seq.Sub, next)
	}
	return seq, nil
}

func (p *parser) pathEltOrInverse() (*PropertyPath, error) {
	inverse := false
	if p.tok.kind == tCaret {
		inverse = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	prim, err := p.pathPrimary()
	if err != nil {
		return nil, err
	}
	// postfix modifiers
	switch p.tok.kind {
	case tStar:
		prim = &PropertyPath{Kind: PathZeroOrMore, Sub: []*PropertyPath{prim}}
		if err := p.advance(); err != nil {
			return nil, err
		}
	case tPlus:
		prim = &PropertyPath{Kind: PathOneOrMore, Sub: []*PropertyPath{prim}}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if inverse {
		prim = &PropertyPath{Kind: PathInverse, Sub: []*PropertyPath{prim}}
	}
	return prim, nil
}

func (p *parser) pathPrimary() (*PropertyPath, error) {
	switch p.tok.kind {
	case tA:
		pp := &PropertyPath{Kind: PathIRI, IRI: rdf.NewIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")}
		return pp, p.advance()
	case tIRIRef:
		pp := &PropertyPath{Kind: PathIRI, IRI: rdf.NewIRI(p.tok.text)}
		return pp, p.advance()
	case tPName:
		iri, err := p.prefixes.Expand(p.tok.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return &PropertyPath{Kind: PathIRI, IRI: rdf.NewIRI(iri)}, p.advance()
	case tLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.pathAlternative()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return nil, p.errf("expected predicate, got %s", p.tok)
	}
}

// objectTerm parses an object, expanding blank node property lists.
func (p *parser) objectTerm() (PatternTerm, []TriplePattern, error) {
	if p.tok.kind == tLBracket {
		bn, inner, err := p.blankNodePropertyList()
		return bn, inner, err
	}
	t, err := p.graphTerm()
	return t, nil, err
}

// blankNodePropertyList parses '[' predicateObjectList ']' and returns
// the fresh variable standing for the blank node plus the inner
// patterns. An empty '[]' is just a fresh variable.
func (p *parser) blankNodePropertyList() (PatternTerm, []TriplePattern, error) {
	if err := p.advance(); err != nil { // '['
		return PatternTerm{}, nil, err
	}
	p.bnodeSeq++
	bn := VarTerm(fmt.Sprintf("_bn%d", p.bnodeSeq))
	if p.tok.kind == tRBracket {
		return bn, nil, p.advance()
	}
	inner, err := p.predicateObjectList(bn)
	if err != nil {
		return PatternTerm{}, nil, err
	}
	if err := p.expect(tRBracket, "']'"); err != nil {
		return PatternTerm{}, nil, err
	}
	return bn, inner, nil
}

// graphTerm parses a variable, IRI, prefixed name, blank node label, or
// literal.
func (p *parser) graphTerm() (PatternTerm, error) {
	switch p.tok.kind {
	case tVar:
		v := VarTerm(p.tok.text)
		return v, p.advance()
	case tIRIRef:
		t := ConstTerm(rdf.NewIRI(p.tok.text))
		return t, p.advance()
	case tPName:
		iri, err := p.prefixes.Expand(p.tok.text)
		if err != nil {
			return PatternTerm{}, p.errf("%v", err)
		}
		return ConstTerm(rdf.NewIRI(iri)), p.advance()
	case tBlank:
		// Blank node labels in patterns act as scoped variables.
		v := VarTerm("_blank_" + p.tok.text)
		return v, p.advance()
	case tString:
		lex := p.tok.text
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		switch p.tok.kind {
		case tLangTag:
			t := ConstTerm(rdf.NewLangLiteral(lex, p.tok.text))
			return t, p.advance()
		case tHatHat:
			if err := p.advance(); err != nil {
				return PatternTerm{}, err
			}
			var dt string
			switch p.tok.kind {
			case tIRIRef:
				dt = p.tok.text
			case tPName:
				iri, err := p.prefixes.Expand(p.tok.text)
				if err != nil {
					return PatternTerm{}, p.errf("%v", err)
				}
				dt = iri
			default:
				return PatternTerm{}, p.errf("expected datatype IRI")
			}
			t := ConstTerm(rdf.NewTypedLiteral(lex, dt))
			return t, p.advance()
		default:
			return ConstTerm(rdf.NewLiteral(lex)), nil
		}
	case tInteger:
		t := ConstTerm(rdf.NewTypedLiteral(p.tok.text, rdf.XSDInteger))
		return t, p.advance()
	case tDecimal:
		t := ConstTerm(rdf.NewTypedLiteral(p.tok.text, rdf.XSDDecimal))
		return t, p.advance()
	case tDouble:
		t := ConstTerm(rdf.NewTypedLiteral(p.tok.text, rdf.XSDDouble))
		return t, p.advance()
	case tMinus, tPlus:
		sign := ""
		if p.tok.kind == tMinus {
			sign = "-"
		}
		if err := p.advance(); err != nil {
			return PatternTerm{}, err
		}
		switch p.tok.kind {
		case tInteger:
			t := ConstTerm(rdf.NewTypedLiteral(sign+p.tok.text, rdf.XSDInteger))
			return t, p.advance()
		case tDecimal:
			t := ConstTerm(rdf.NewTypedLiteral(sign+p.tok.text, rdf.XSDDecimal))
			return t, p.advance()
		case tDouble:
			t := ConstTerm(rdf.NewTypedLiteral(sign+p.tok.text, rdf.XSDDouble))
			return t, p.advance()
		default:
			return PatternTerm{}, p.errf("expected number after sign")
		}
	case tKeyword:
		switch p.tok.text {
		case "TRUE":
			return ConstTerm(rdf.NewBoolean(true)), p.advance()
		case "FALSE":
			return ConstTerm(rdf.NewBoolean(false)), p.advance()
		}
	}
	return PatternTerm{}, p.errf("expected term, got %s", p.tok)
}

// constraint parses a FILTER constraint: a parenthesized expression or
// a built-in call (including EXISTS / NOT EXISTS).
func (p *parser) constraint() (Expression, error) {
	if p.tok.kind == tLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		return e, p.expect(tRParen, "')'")
	}
	return p.primaryExpression()
}

// Expression grammar with standard precedence.
func (p *parser) expression() (Expression, error) {
	return p.orExpression()
}

func (p *parser) orExpression() (Expression, error) {
	left, err := p.andExpression()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tOrOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.andExpression()
		if err != nil {
			return nil, err
		}
		left = ExprBinary{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *parser) andExpression() (Expression, error) {
	left, err := p.relationalExpression()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tAndAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.relationalExpression()
		if err != nil {
			return nil, err
		}
		left = ExprBinary{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *parser) relationalExpression() (Expression, error) {
	left, err := p.additiveExpression()
	if err != nil {
		return nil, err
	}
	var op BinaryOp
	switch p.tok.kind {
	case tEq:
		op = OpEq
	case tNe:
		op = OpNe
	case tLt:
		op = OpLt
	case tGt:
		op = OpGt
	case tLe:
		op = OpLe
	case tGe:
		op = OpGe
	case tKeyword:
		if p.tok.text == "IN" {
			return p.inList(left, false)
		}
		if p.tok.text == "NOT" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if !p.isKeyword("IN") {
				return nil, p.errf("expected IN after NOT")
			}
			return p.inList(left, true)
		}
		return left, nil
	default:
		return left, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	right, err := p.additiveExpression()
	if err != nil {
		return nil, err
	}
	return ExprBinary{Op: op, L: left, R: right}, nil
}

func (p *parser) inList(left Expression, neg bool) (Expression, error) {
	if err := p.advance(); err != nil { // IN
		return nil, err
	}
	if err := p.expect(tLParen, "'('"); err != nil {
		return nil, err
	}
	var list []Expression
	for p.tok.kind != tRParen {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if p.tok.kind == tComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.advance(); err != nil { // ')'
		return nil, err
	}
	return ExprIn{X: left, List: list, Neg: neg}, nil
}

func (p *parser) additiveExpression() (Expression, error) {
	left, err := p.multiplicativeExpression()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tPlus || p.tok.kind == tMinus {
		op := OpAdd
		if p.tok.kind == tMinus {
			op = OpSub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.multiplicativeExpression()
		if err != nil {
			return nil, err
		}
		left = ExprBinary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) multiplicativeExpression() (Expression, error) {
	left, err := p.unaryExpression()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tStar || p.tok.kind == tSlash {
		op := OpMul
		if p.tok.kind == tSlash {
			op = OpDiv
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.unaryExpression()
		if err != nil {
			return nil, err
		}
		left = ExprBinary{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) unaryExpression() (Expression, error) {
	switch p.tok.kind {
	case tBang:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.unaryExpression()
		if err != nil {
			return nil, err
		}
		return ExprNot{X: x}, nil
	case tMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.unaryExpression()
		if err != nil {
			return nil, err
		}
		return ExprNeg{X: x}, nil
	case tPlus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.unaryExpression()
	default:
		return p.primaryExpression()
	}
}

// aggregateNames are the keywords treated as aggregate functions.
var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"SAMPLE": true, "GROUP_CONCAT": true,
}

func (p *parser) primaryExpression() (Expression, error) {
	switch p.tok.kind {
	case tLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		return e, p.expect(tRParen, "')'")
	case tVar:
		v := ExprVar{Name: p.tok.text}
		return v, p.advance()
	case tIRIRef:
		t := ExprConst{Term: rdf.NewIRI(p.tok.text)}
		return t, p.advance()
	case tPName:
		iri, err := p.prefixes.Expand(p.tok.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return ExprConst{Term: rdf.NewIRI(iri)}, p.advance()
	case tString, tInteger, tDecimal, tDouble:
		pt, err := p.graphTerm()
		if err != nil {
			return nil, err
		}
		return ExprConst{Term: pt.Term}, nil
	case tKeyword:
		kw := p.tok.text
		switch kw {
		case "TRUE":
			return ExprConst{Term: rdf.NewBoolean(true)}, p.advance()
		case "FALSE":
			return ExprConst{Term: rdf.NewBoolean(false)}, p.advance()
		case "EXISTS", "NOT":
			neg := false
			if kw == "NOT" {
				if err := p.advance(); err != nil {
					return nil, err
				}
				if !p.isKeyword("EXISTS") {
					return nil, p.errf("expected EXISTS after NOT")
				}
				neg = true
			}
			if err := p.advance(); err != nil { // EXISTS
				return nil, err
			}
			g, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			return ExprExists{Pattern: g, Neg: neg}, nil
		}
		if aggregateNames[kw] {
			return p.aggregate(kw)
		}
		// generic built-in call NAME(args...)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tLParen {
			return nil, p.errf("expected '(' after %s", kw)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		var args []Expression
		for p.tok.kind != tRParen {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			if p.tok.kind == tComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.advance(); err != nil { // ')'
			return nil, err
		}
		return ExprCall{Name: kw, Args: args}, nil
	}
	return nil, p.errf("expected expression, got %s", p.tok)
}

func (p *parser) aggregate(name string) (Expression, error) {
	if err := p.advance(); err != nil { // function name
		return nil, err
	}
	if err := p.expect(tLParen, "'('"); err != nil {
		return nil, err
	}
	agg := ExprAggregate{Func: name, Separator: " "}
	if p.isKeyword("DISTINCT") {
		agg.Distinct = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind == tStar {
		if name != "COUNT" {
			return nil, p.errf("* only allowed in COUNT")
		}
		agg.Star = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		agg.Arg = e
	}
	if p.tok.kind == tSemicolon { // GROUP_CONCAT(...; SEPARATOR="x")
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.isKeyword("SEPARATOR") {
			return nil, p.errf("expected SEPARATOR")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tEq, "'='"); err != nil {
			return nil, err
		}
		if p.tok.kind != tString {
			return nil, p.errf("expected separator string")
		}
		agg.Separator = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return agg, p.expect(tRParen, "')'")
}
