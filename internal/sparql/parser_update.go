package sparql

import "repro/internal/rdf"

// updateOperation parses one update operation (prologue already
// consumed).
func (p *parser) updateOperation() (UpdateOperation, error) {
	switch {
	case p.isKeyword("INSERT"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isKeyword("DATA") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			quads, err := p.quadData()
			if err != nil {
				return nil, err
			}
			return InsertDataOp{Quads: quads}, nil
		}
		// INSERT {template} WHERE {pattern}
		ins, err := p.quadTemplate()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("WHERE"); err != nil {
			return nil, err
		}
		w, err := p.groupGraphPattern()
		if err != nil {
			return nil, err
		}
		return ModifyOp{Insert: ins, Where: w}, nil
	case p.isKeyword("DELETE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isKeyword("DATA") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			quads, err := p.quadData()
			if err != nil {
				return nil, err
			}
			return DeleteDataOp{Quads: quads}, nil
		}
		if p.isKeyword("WHERE") {
			// DELETE WHERE {pattern}: pattern doubles as template.
			if err := p.advance(); err != nil {
				return nil, err
			}
			w, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			del, err := patternAsTemplate(w)
			if err != nil {
				return nil, err
			}
			return ModifyOp{Delete: del, Where: w}, nil
		}
		del, err := p.quadTemplate()
		if err != nil {
			return nil, err
		}
		var ins []QuadPattern
		if p.isKeyword("INSERT") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			ins, err = p.quadTemplate()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectKeyword("WHERE"); err != nil {
			return nil, err
		}
		w, err := p.groupGraphPattern()
		if err != nil {
			return nil, err
		}
		return ModifyOp{Delete: del, Insert: ins, Where: w}, nil
	case p.isKeyword("CLEAR"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isKeyword("SILENT") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		switch {
		case p.isKeyword("ALL"):
			return ClearOp{All: true}, p.advance()
		case p.isKeyword("DEFAULT"):
			return ClearOp{Default: true}, p.advance()
		case p.isKeyword("GRAPH"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			gt, err := p.varOrIRI()
			if err != nil {
				return nil, err
			}
			if gt.IsVar {
				return nil, p.errf("CLEAR GRAPH needs an IRI")
			}
			return ClearOp{Graph: gt.Term}, nil
		default:
			return nil, p.errf("expected ALL, DEFAULT or GRAPH after CLEAR")
		}
	default:
		return nil, p.errf("expected update operation, got %s", p.tok)
	}
}

// quadData parses '{' ground triples with optional GRAPH blocks '}'.
func (p *parser) quadData() ([]rdf.Quad, error) {
	tmpl, err := p.quadTemplate()
	if err != nil {
		return nil, err
	}
	quads := make([]rdf.Quad, 0, len(tmpl))
	for _, qp := range tmpl {
		s, okS := dataTermOf(qp.S)
		pr, okP := dataTermOf(qp.P)
		o, okO := dataTermOf(qp.O)
		g, okG := dataTermOf(qp.Graph)
		if !okS || !okP || !okO || !okG {
			return nil, p.errf("variables not allowed in DATA block")
		}
		quads = append(quads, rdf.NewQuad(s, pr, o, g))
	}
	return quads, nil
}

// dataTermOf converts a pattern term to a ground term for a DATA block.
// Blank node labels parse as scoped variables named "_blank_<label>";
// in DATA blocks they denote actual blank nodes.
func dataTermOf(pt PatternTerm) (rdf.Term, bool) {
	if !pt.IsVar {
		return pt.Term, true
	}
	if label, ok := cutPrefix(pt.Var, "_blank_"); ok {
		return rdf.NewBlank(label), true
	}
	// Anonymous [] property lists also stand for blank nodes.
	if label, ok := cutPrefix(pt.Var, "_bn"); ok {
		return rdf.NewBlank("anon" + label), true
	}
	return rdf.Term{}, false
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}

// quadTemplate parses '{' triple templates with optional GRAPH blocks
// '}'. Property paths are not allowed in templates.
func (p *parser) quadTemplate() ([]QuadPattern, error) {
	if err := p.expect(tLBrace, "'{'"); err != nil {
		return nil, err
	}
	var out []QuadPattern
	for p.tok.kind != tRBrace {
		if p.tok.kind == tDot {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		if p.isKeyword("GRAPH") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			gt, err := p.varOrIRI()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tLBrace, "'{'"); err != nil {
				return nil, err
			}
			for p.tok.kind != tRBrace {
				if p.tok.kind == tDot {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				tps, err := p.triplesSameSubject()
				if err != nil {
					return nil, err
				}
				for _, tp := range tps {
					if tp.Path != nil {
						return nil, p.errf("property path not allowed in template")
					}
					out = append(out, QuadPattern{TriplePattern: tp, Graph: gt})
				}
			}
			if err := p.advance(); err != nil { // inner '}'
				return nil, err
			}
			continue
		}
		tps, err := p.triplesSameSubject()
		if err != nil {
			return nil, err
		}
		for _, tp := range tps {
			if tp.Path != nil {
				return nil, p.errf("property path not allowed in template")
			}
			out = append(out, QuadPattern{TriplePattern: tp})
		}
	}
	return out, p.advance() // '}'
}

// patternAsTemplate converts the simple-BGP subset of a group graph
// pattern into a quad template (used for DELETE WHERE).
func patternAsTemplate(g GroupGraphPattern) ([]QuadPattern, error) {
	var out []QuadPattern
	for _, el := range g.Elements {
		switch e := el.(type) {
		case TriplePattern:
			if e.Path != nil {
				return nil, errPathInTemplate
			}
			out = append(out, QuadPattern{TriplePattern: e})
		case GraphElement:
			inner, err := patternAsTemplate(e.Pattern)
			if err != nil {
				return nil, err
			}
			for _, qp := range inner {
				qp.Graph = e.Graph
				out = append(out, qp)
			}
		default:
			return nil, errComplexDeleteWhere
		}
	}
	return out, nil
}
