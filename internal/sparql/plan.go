package sparql

import (
	"math"

	"repro/internal/store"
)

// Cost-based query planning. The planner is a rewrite pass between
// parse and eval: it walks the group graph pattern tree once, and for
// every basic graph pattern chooses a join order greedily by estimated
// output cardinality (the estimateJoinRows model over the store's
// statistics snapshot), then floats each FILTER to the earliest point
// at which all of its variables are certainly bound. The pass produces
// a rewritten copy of the query — the caller's Query is never mutated —
// plus the plan's estimated total cost, the classic C_out metric: the
// sum of every operator's estimated output cardinality. C_out is what
// the ql layer compares to auto-select the direct vs. alternative
// translation of a QL program.
//
// What the planner will not do:
//
//   - It never reorders OPTIONAL, MINUS, UNION, BIND, GRAPH, VALUES, or
//     subselect elements relative to each other or to the joins around
//     them: left-join and difference are order-sensitive, so only the
//     commutative parts — triple-pattern joins within one BGP, and
//     filters over certainly-bound variables — move.
//   - A FILTER moves only when every variable it mentions (including
//     variables inside an EXISTS pattern) is certainly bound at the new
//     position. Variables bound by OPTIONAL, BIND, VALUES rows with
//     UNDEF, or subselect projections are never "certain", so filters
//     over them stay where they were written. A filter also never
//     crosses a BIND that could rebind one of its variables.
//   - Property paths carry no statistics and are assumed to preserve
//     cardinality; they participate in reordering but never look cheap.
//   - Updates (DELETE/INSERT WHERE) are not planned; their WHERE
//     clauses keep the runtime greedy reorder of evalBGP.
//
// The pass runs by default on every Query/Select/Ask/Construct/Describe
// entry (WithPlanner(false), or -planner=off on the CLIs, restores the
// previous behavior: textual order plus evalBGP's runtime greedy
// reorder). A planned query is marked Planned and evaluated exactly in
// the planned order.

// WithPlanner enables or disables the cost-based planning pass. The
// planner is on by default; disabling it restores the pre-planner
// behavior (textual pattern order with evalBGP's runtime greedy
// reorder, and no filter pushdown).
func WithPlanner(enabled bool) Option {
	return func(e *Engine) { e.planner = enabled }
}

// PlannerEnabled reports whether the engine runs the cost-based
// planning pass on each query.
func (e *Engine) PlannerEnabled() bool { return e.planner }

// Plan is the result of the cost-based planning pass over one query.
type Plan struct {
	// Query is the rewritten, evaluation-ready query: BGP joins in the
	// chosen order, filters pushed down, Planned set. The input query is
	// never mutated.
	Query *Query

	// Cost is the estimated total cost of the plan (C_out): the sum of
	// the estimated output cardinality of every operator. Comparable
	// across queries against the same store; not a wall-time prediction.
	Cost float64

	// Reordered reports whether any BGP's join order differs from the
	// written order.
	Reordered bool

	// PushedFilters counts FILTER elements moved earlier than written.
	PushedFilters int
}

// Plan runs the cost-based planning pass over q against the engine's
// store statistics and returns the rewritten query with its cost. It
// can be called directly (EXPLAIN-style tooling does); normal query
// entry points apply it automatically while the planner is enabled.
func (e *Engine) Plan(q *Query) *Plan {
	ps := &planState{st: e.store}
	nq := ps.query(q)
	return &Plan{Query: nq, Cost: ps.cost, Reordered: ps.reordered, PushedFilters: ps.pushed}
}

// EstimateCost plans q and returns the estimated total cost without
// exposing the rewrite. This is the plan-cost API the ql layer uses to
// choose between the direct and alternative translations.
func (e *Engine) EstimateCost(q *Query) float64 {
	return e.Plan(q).Cost
}

// prepared applies the planning pass on a query entry point. Already
// planned queries (a caller may cache a Plan result) pass through.
func (e *Engine) prepared(q *Query) *Query {
	if !e.planner || q.Planned {
		return q
	}
	return e.Plan(q).Query
}

// planState accumulates cost and rewrite facts across one planning
// pass.
type planState struct {
	st        *store.Store
	cost      float64
	reordered bool
	pushed    int
	// lastRows is the estimated output cardinality of the most recently
	// planned (sub)query, read by the subselect join estimate.
	lastRows float64
}

// query plans one (sub)query: its WHERE group recursively, then the
// post-WHERE operators (aggregation, DISTINCT, ORDER BY, slice,
// projection), each costed as one pass over its estimated input. It
// returns the rewritten copy.
func (ps *planState) query(q *Query) *Query {
	nq := *q
	var rows float64
	nq.Where, rows = ps.group(q.Where, nil, 1, store.NoID)
	nq.Planned = true
	if len(nq.GroupBy) > 0 || projectionHasAggregates(&nq) {
		ps.cost += rows
		rows = math.Round(math.Sqrt(rows)) // estimateGroups
	}
	if nq.Distinct {
		ps.cost += rows
	}
	if len(nq.OrderBy) > 0 {
		ps.cost += rows
	}
	if nq.Offset > 0 || nq.Limit >= 0 {
		rows = estimateSliceRows(rows, nq.Offset, nq.Limit)
	}
	ps.cost += rows // projection
	ps.lastRows = rows
	return &nq
}

// pendingFilter tracks one FILTER of the group being planned: where it
// was written, the variables it mentions, and the earliest element it
// must not cross (a BIND that could rebind one of its variables).
type pendingFilter struct {
	f       FilterElement
	orig    int // index in the written element list
	barrier int // index of the latest earlier element that may rebind a filter var; -1 if none
	vars    map[string]bool
	emitted bool
}

// group plans one group graph pattern. outer is the set of variables
// certainly bound before the group evaluates, in the estimated input
// cardinality, gid the active graph. It returns the rewritten group and
// the estimated output cardinality, accumulating cost into ps.
func (ps *planState) group(g GroupGraphPattern, outer map[string]bool, in float64, gid store.ID) (GroupGraphPattern, float64) {
	bound := make(map[string]bool, len(outer))
	for v := range outer {
		bound[v] = true
	}
	els := g.Elements

	// Index the group's filters. Every filter is a pushdown candidate;
	// eligibility is decided at emit time by the certainly-bound set.
	var pend []*pendingFilter
	byIdx := make(map[int]*pendingFilter)
	for i, el := range els {
		f, ok := el.(FilterElement)
		if !ok {
			continue
		}
		vars := make(map[string]bool)
		exprVarsInto(f.Expr, vars)
		barrier := -1
		for j := i - 1; j >= 0; j-- {
			if b, ok := els[j].(BindElement); ok && vars[b.Var] {
				barrier = j
				break
			}
		}
		pf := &pendingFilter{f: f, orig: i, barrier: barrier, vars: vars}
		pend = append(pend, pf)
		byIdx[i] = pf
	}

	rows := in
	out := make([]PatternElement, 0, len(els))
	consumed := -1 // index of the last written element consumed by the walk

	emitFilter := func(pf *pendingFilter) {
		pf.emitted = true
		out = append(out, pf.f)
		rows = estimateFilterRows(rows)
		ps.cost += rows
	}
	// flushReady emits, in written order, every pending filter whose
	// variables are all certainly bound and whose BIND barrier (if any)
	// has been consumed.
	flushReady := func() {
		for _, pf := range pend {
			if pf.emitted || pf.barrier > consumed {
				continue
			}
			if !varsSubset(pf.vars, bound) {
				continue
			}
			if consumed+1 < pf.orig {
				ps.pushed++
			}
			emitFilter(pf)
		}
	}

	flushReady() // filters over outer-bound variables move to the front

	for i := 0; i < len(els); i++ {
		el := els[i]
		if pf, ok := byIdx[i]; ok {
			// The filter's written position. If pushdown has not already
			// emitted it, it runs here — exactly the written semantics,
			// variables bound or not.
			if !pf.emitted {
				emitFilter(pf)
			}
			consumed = i
			continue
		}
		if _, ok := el.(TriplePattern); ok {
			// A maximal run of consecutive triple patterns is the BGP the
			// evaluator forms; order it greedily by estimated output
			// cardinality, preferring patterns connected to the bound set
			// (a disconnected pattern is a cartesian product and is only
			// taken when nothing else remains). After each join, pushed
			// filters may land mid-run — the earliest point their
			// variables are bound.
			j := i
			var run []TriplePattern
			for ; j < len(els); j++ {
				tp, ok := els[j].(TriplePattern)
				if !ok {
					break
				}
				run = append(run, tp)
			}
			remaining := run
			for len(remaining) > 0 {
				next := 0
				if len(remaining) > 1 {
					candidates := make([]int, 0, len(remaining))
					for ci, tp := range remaining {
						if patternConnected(tp, bound) {
							candidates = append(candidates, ci)
						}
					}
					if len(candidates) == 0 {
						for ci := range remaining {
							candidates = append(candidates, ci)
						}
					}
					best := math.Inf(1)
					for _, ci := range candidates {
						est := estimateJoinRows(ps.st, remaining[ci], bound, rows, gid)
						if est < best {
							best, next = est, ci
						}
					}
				}
				if next != 0 {
					ps.reordered = true
				}
				tp := remaining[next]
				remaining = append(remaining[:next], remaining[next+1:]...)
				out = append(out, tp)
				rows = estimateJoinRows(ps.st, tp, bound, rows, gid)
				ps.cost += rows
				markBound(tp, bound)
				if len(remaining) == 0 {
					consumed = j - 1
				}
				flushReady()
			}
			i = j - 1
			continue
		}
		switch e := el.(type) {
		case BindElement:
			// BIND extends every row; its variable is not certainly bound
			// (the expression may error per row, leaving it unbound).
			out = append(out, e)
			ps.cost += rows
		case OptionalElement:
			sub, _ := ps.group(e.Pattern, bound, rows, gid)
			out = append(out, OptionalElement{Pattern: sub})
			ps.cost += rows // left rows are preserved
		case UnionElement:
			nb := make([]GroupGraphPattern, len(e.Branches))
			total := 0.0
			for bi, b := range e.Branches {
				var br float64
				nb[bi], br = ps.group(b, bound, rows, gid)
				total += br
			}
			out = append(out, UnionElement{Branches: nb})
			rows = total
			ps.cost += rows
			// A variable certainly bound by every branch is certainly
			// bound after the union.
			if len(e.Branches) > 0 {
				common := make(map[string]bool)
				certainVarsInto(e.Branches[0], common)
				for _, b := range e.Branches[1:] {
					bc := make(map[string]bool)
					certainVarsInto(b, bc)
					for v := range common {
						if !bc[v] {
							delete(common, v)
						}
					}
				}
				for v := range common {
					bound[v] = true
				}
			}
		case MinusElement:
			// The right side evaluates independently from an empty
			// solution; it binds nothing and removes rows.
			sub, _ := ps.group(e.Pattern, nil, 1, gid)
			out = append(out, MinusElement{Pattern: sub})
			ps.cost += rows
		case GraphElement:
			sgid := gid
			if !e.Graph.IsVar {
				if id, ok := ps.st.GraphID(e.Graph.Term); ok {
					sgid = id
				}
			} else {
				// Var graph iterates every named graph; plan the interior
				// once against default-graph statistics (an approximation).
				sgid = store.NoID
			}
			sub, sr := ps.group(e.Pattern, bound, rows, sgid)
			out = append(out, GraphElement{Graph: e.Graph, Pattern: sub})
			rows = sr
			ps.cost += rows
			if e.Graph.IsVar {
				bound[e.Graph.Var] = true
			}
			certainVarsInto(e.Pattern, bound)
		case GroupElement:
			sub, sr := ps.group(e.Pattern, bound, rows, gid)
			out = append(out, GroupElement{Pattern: sub})
			rows = sr
			certainVarsInto(e.Pattern, bound)
		case ValuesElement:
			out = append(out, e)
			if n := len(e.Rows); n > 0 {
				rows *= float64(n)
			}
			ps.cost += rows
			// A VALUES variable with no UNDEF in any row is certainly
			// bound afterwards.
			for vi, name := range e.Vars {
				all := len(e.Rows) > 0
				for _, vr := range e.Rows {
					if vr[vi].IsZero() {
						all = false
						break
					}
				}
				if all {
					bound[name] = true
				}
			}
		case SubSelectElement:
			// A subselect evaluates independently and joins the current
			// rows on shared projected variables. Its projections are not
			// certainly bound (expressions may error), so they do not
			// enter the bound set.
			sq := ps.query(e.Query)
			sr := ps.lastRows
			out = append(out, SubSelectElement{Query: sq})
			if sr > rows {
				rows = sr
			}
			ps.cost += rows
		default:
			out = append(out, el)
			ps.cost += rows
		}
		consumed = i
		flushReady()
	}

	return GroupGraphPattern{Elements: out}, rows
}

// varsSubset reports whether every variable of vars is in bound.
func varsSubset(vars, bound map[string]bool) bool {
	for v := range vars {
		if !bound[v] {
			return false
		}
	}
	return true
}

// exprVarsInto collects every variable an expression mentions,
// including all variables of EXISTS patterns (which therefore pin
// EXISTS filters in place unless the whole pattern is bound).
func exprVarsInto(e Expression, vars map[string]bool) {
	switch x := e.(type) {
	case ExprVar:
		vars[x.Name] = true
	case ExprBinary:
		exprVarsInto(x.L, vars)
		exprVarsInto(x.R, vars)
	case ExprNot:
		exprVarsInto(x.X, vars)
	case ExprNeg:
		exprVarsInto(x.X, vars)
	case ExprCall:
		for _, a := range x.Args {
			exprVarsInto(a, vars)
		}
	case ExprIn:
		exprVarsInto(x.X, vars)
		for _, a := range x.List {
			exprVarsInto(a, vars)
		}
	case ExprExists:
		patternVarsInto(x.Pattern, vars)
	case ExprAggregate:
		if x.Arg != nil {
			exprVarsInto(x.Arg, vars)
		}
	}
}

// patternVarsInto collects every variable occurring anywhere in a group
// graph pattern.
func patternVarsInto(g GroupGraphPattern, vars map[string]bool) {
	for _, el := range g.Elements {
		switch e := el.(type) {
		case TriplePattern:
			for _, pt := range []PatternTerm{e.S, e.P, e.O} {
				if pt.IsVar {
					vars[pt.Var] = true
				}
			}
		case FilterElement:
			exprVarsInto(e.Expr, vars)
		case BindElement:
			vars[e.Var] = true
			exprVarsInto(e.Expr, vars)
		case OptionalElement:
			patternVarsInto(e.Pattern, vars)
		case UnionElement:
			for _, b := range e.Branches {
				patternVarsInto(b, vars)
			}
		case MinusElement:
			patternVarsInto(e.Pattern, vars)
		case GraphElement:
			if e.Graph.IsVar {
				vars[e.Graph.Var] = true
			}
			patternVarsInto(e.Pattern, vars)
		case GroupElement:
			patternVarsInto(e.Pattern, vars)
		case ValuesElement:
			for _, v := range e.Vars {
				vars[v] = true
			}
		case SubSelectElement:
			for _, it := range e.Query.Projection {
				vars[it.Var] = true
			}
		}
	}
}

// certainVarsInto collects the variables a group certainly binds in
// every solution it produces: triple-pattern variables (a row only
// survives a join by binding them), recursively through nested groups
// and GRAPH blocks, and the intersection across UNION branches.
// OPTIONAL, MINUS, BIND, VALUES-with-UNDEF, and subselect projections
// bind nothing certainly.
func certainVarsInto(g GroupGraphPattern, into map[string]bool) {
	for _, el := range g.Elements {
		switch e := el.(type) {
		case TriplePattern:
			for _, pt := range []PatternTerm{e.S, e.P, e.O} {
				if pt.IsVar {
					into[pt.Var] = true
				}
			}
		case UnionElement:
			if len(e.Branches) == 0 {
				continue
			}
			common := make(map[string]bool)
			certainVarsInto(e.Branches[0], common)
			for _, b := range e.Branches[1:] {
				bc := make(map[string]bool)
				certainVarsInto(b, bc)
				for v := range common {
					if !bc[v] {
						delete(common, v)
					}
				}
			}
			for v := range common {
				into[v] = true
			}
		case GraphElement:
			if e.Graph.IsVar {
				into[e.Graph.Var] = true
			}
			certainVarsInto(e.Pattern, into)
		case GroupElement:
			certainVarsInto(e.Pattern, into)
		case ValuesElement:
			for vi, name := range e.Vars {
				all := len(e.Rows) > 0
				for _, vr := range e.Rows {
					if vr[vi].IsZero() {
						all = false
						break
					}
				}
				if all {
					into[name] = true
				}
			}
		}
	}
}

// estimateJoinRows predicts the output rows of joining one triple
// pattern into in solutions, System R style: the per-row match count is
// the store's exact count of the constant-only pattern shrunk, under
// the independence assumption, by the distinct cardinality of every
// position occupied by an already-bound variable. Statistics come from
// store.PredicateStat (per-predicate distinct subjects/objects) when
// the predicate is constant, and graph-level distincts otherwise. The
// same model backs the planner's join ordering and the est= annotations
// of EXPLAIN ANALYZE.
func estimateJoinRows(st *store.Store, tp TriplePattern, bound map[string]bool, in float64, gid store.ID) float64 {
	if tp.Path != nil {
		// No statistics for property paths; assume they preserve
		// cardinality.
		return in
	}
	dict := st.Dict()
	var pat store.IDTriple
	lookup := func(pt PatternTerm) (store.ID, bool) {
		if pt.IsVar {
			return store.NoID, true
		}
		id, ok := dict.Lookup(pt.Term)
		return id, ok
	}
	var ok bool
	if pat.S, ok = lookup(tp.S); !ok {
		return 0
	}
	if pat.P, ok = lookup(tp.P); !ok {
		return 0
	}
	if pat.O, ok = lookup(tp.O); !ok {
		return 0
	}
	base := float64(st.Count(gid, pat))
	if base == 0 {
		return 0
	}
	div := 1.0
	if pat.P != store.NoID {
		if ps, found := st.PredicateStat(gid, pat.P); found {
			if tp.S.IsVar && bound[tp.S.Var] && ps.DistinctS > 0 {
				div *= float64(ps.DistinctS)
			}
			if tp.O.IsVar && bound[tp.O.Var] && ps.DistinctO > 0 {
				div *= float64(ps.DistinctO)
			}
		}
	} else {
		gs := st.GraphStat(gid)
		if tp.S.IsVar && bound[tp.S.Var] && gs.DistinctSubjects > 0 {
			div *= float64(gs.DistinctSubjects)
		}
		if tp.O.IsVar && bound[tp.O.Var] && gs.DistinctObjects > 0 {
			div *= float64(gs.DistinctObjects)
		}
		if tp.P.IsVar && bound[tp.P.Var] && gs.DistinctPredicates > 0 {
			div *= float64(gs.DistinctPredicates)
		}
	}
	return in * base / div
}

// estimateFilterRows is estimateFilter over the planner's fractional
// cardinalities: the textbook default 1/3 selectivity.
func estimateFilterRows(in float64) float64 {
	if in == 0 {
		return 0
	}
	if in < 3 {
		return 1
	}
	return in / 3
}

// estimateSliceRows is estimateSlice over fractional cardinalities.
func estimateSliceRows(in float64, offset, limit int) float64 {
	n := in - float64(offset)
	if n < 0 {
		n = 0
	}
	if limit >= 0 && float64(limit) < n {
		n = float64(limit)
	}
	return n
}
