package sparql

import (
	"reflect"
	"testing"

	"repro/internal/store"
)

// planQuery parses and plans a query against st, returning the plan.
func planQuery(t *testing.T, st *store.Store, src string) *Plan {
	t.Helper()
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return NewEngine(st).Plan(q)
}

// assertSameResults evaluates src with the planner on and off and
// requires identical result tables (including JSON byte identity).
func assertSameResults(t *testing.T, st *store.Store, src string) {
	t.Helper()
	on, err := NewEngine(st).QueryString(src)
	if err != nil {
		t.Fatalf("planner on: %v\n%s", err, src)
	}
	off, err := NewEngine(st, WithPlanner(false)).QueryString(src)
	if err != nil {
		t.Fatalf("planner off: %v\n%s", err, src)
	}
	if !reflect.DeepEqual(on, off) {
		t.Fatalf("planner on/off results differ for\n%s\non:  %+v\noff: %+v", src, on, off)
	}
	onJSON, _ := on.MarshalJSON()
	offJSON, _ := off.MarshalJSON()
	if string(onJSON) != string(offJSON) {
		t.Fatalf("planner on/off JSON differs for\n%s", src)
	}
}

// TestPlanReordersBadWrittenOrder: a BGP written large-pattern-first is
// reordered to start from the most selective pattern, and the reordered
// plan returns exactly the written-order results.
func TestPlanReordersBadWrittenOrder(t *testing.T) {
	st := loadStore(t, peopleTTL)
	const src = `
PREFIX ex: <http://example.org/>
SELECT ?name WHERE {
  ?p ex:name ?name .
  ?p a ex:Person .
} ORDER BY ?name`
	p := planQuery(t, st, src)
	if !p.Reordered {
		t.Fatal("plan did not reorder a deliberately bad written order")
	}
	if !p.Query.Planned {
		t.Fatal("planned query not marked Planned")
	}
	// The selective pattern (3 persons) must come before the name scan
	// (4 names).
	first, ok := p.Query.Where.Elements[0].(TriplePattern)
	if !ok {
		t.Fatalf("first planned element is %T, want TriplePattern", p.Query.Where.Elements[0])
	}
	if first.O.IsVar || first.O.Term.Value != "http://example.org/Person" {
		t.Errorf("first planned pattern is %+v, want the ?p a ex:Person pattern", first)
	}
	if p.Cost <= 0 {
		t.Errorf("plan cost = %v, want > 0", p.Cost)
	}
	assertSameResults(t, st, src)
}

// TestPlanNoOpOnWellOrderedQuery: a query already written in the
// planner's preferred order (most selective pattern first, filter at
// the earliest bound point) plans as a no-op — ties keep written order,
// so Reordered stays false and the elements are untouched.
func TestPlanNoOpOnWellOrderedQuery(t *testing.T) {
	st := loadStore(t, peopleTTL)
	const src = `
PREFIX ex: <http://example.org/>
SELECT ?name WHERE {
  ?p a ex:Person .
  FILTER (?p != ex:bob)
  ?p ex:name ?name .
} ORDER BY ?name`
	p := planQuery(t, st, src)
	if p.Reordered {
		t.Fatal("well-ordered query was reordered")
	}
	if p.PushedFilters != 0 {
		t.Fatalf("PushedFilters = %d, want 0 (filter already at its earliest point)", p.PushedFilters)
	}
	if _, ok := p.Query.Where.Elements[1].(FilterElement); !ok {
		t.Fatalf("element order changed: %+v", p.Query.Where.Elements)
	}
	assertSameResults(t, st, src)
}

// TestPlanPushesFilterDown: a FILTER written after the whole BGP moves
// to the earliest join at which its variable is bound, splitting the
// BGP — and the results stay identical to the written order.
func TestPlanPushesFilterDown(t *testing.T) {
	st := loadStore(t, peopleTTL)
	const src = `
PREFIX ex: <http://example.org/>
SELECT ?name ?c WHERE {
  ?p a ex:Person .
  ?p ex:name ?name .
  ?p ex:city ?c .
  FILTER (?name != "Bob")
} ORDER BY ?name`
	p := planQuery(t, st, src)
	if p.PushedFilters != 1 {
		t.Fatalf("PushedFilters = %d, want 1", p.PushedFilters)
	}
	// The filter must appear before the last triple pattern.
	filterIdx, lastTP := -1, -1
	for i, el := range p.Query.Where.Elements {
		switch el.(type) {
		case FilterElement:
			filterIdx = i
		case TriplePattern:
			lastTP = i
		}
	}
	if filterIdx < 0 || filterIdx > lastTP {
		t.Fatalf("filter not pushed below the BGP: filter at %d, last pattern at %d\n%+v",
			filterIdx, lastTP, p.Query.Where.Elements)
	}
	assertSameResults(t, st, src)
}

// TestPlanFilterBeforeBindingStays: a FILTER written before the pattern
// that binds its variable keeps its written position — under SPARQL
// semantics it evaluates against unbound variables (an error, dropping
// every row), and the planner must not silently "fix" that.
func TestPlanFilterBeforeBindingStays(t *testing.T) {
	st := loadStore(t, peopleTTL)
	const src = `
PREFIX ex: <http://example.org/>
SELECT ?name WHERE {
  FILTER (?name != "Bob")
  ?p ex:name ?name .
}`
	p := planQuery(t, st, src)
	if p.PushedFilters != 0 {
		t.Fatalf("PushedFilters = %d, want 0", p.PushedFilters)
	}
	if _, ok := p.Query.Where.Elements[0].(FilterElement); !ok {
		t.Fatalf("leading filter moved: %+v", p.Query.Where.Elements)
	}
	res, err := NewEngine(st).QueryString(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("filter over unbound variable kept %d rows, want 0", res.Len())
	}
	assertSameResults(t, st, src)
}

// TestPlanFilterOnOptionalVarStays: a FILTER over an OPTIONAL-bound
// variable is not certainly bound, so it stays at its written position
// after the OPTIONAL (where BOUND() semantics depend on the left join
// having run).
func TestPlanFilterOnOptionalVarStays(t *testing.T) {
	st := loadStore(t, peopleTTL)
	const src = `
PREFIX ex: <http://example.org/>
SELECT ?p ?age WHERE {
  ?p a ex:Person .
  OPTIONAL { ?p ex:age ?age }
  FILTER (!BOUND(?age) || ?age > 26)
} ORDER BY ?p`
	p := planQuery(t, st, src)
	if p.PushedFilters != 0 {
		t.Fatalf("PushedFilters = %d, want 0", p.PushedFilters)
	}
	els := p.Query.Where.Elements
	if _, ok := els[len(els)-1].(FilterElement); !ok {
		t.Fatalf("filter over OPTIONAL variable moved: %+v", els)
	}
	assertSameResults(t, st, src)
}

// TestPlanFilterNeverCrossesBind: a FILTER over a BIND-introduced
// variable stays after the BIND (the variable is never certainly
// bound — the bind expression may error per row).
func TestPlanFilterNeverCrossesBind(t *testing.T) {
	st := loadStore(t, peopleTTL)
	const src = `
PREFIX ex: <http://example.org/>
SELECT ?p ?m WHERE {
  ?p a ex:Person .
  ?p ex:name ?n .
  BIND (?n AS ?m)
  FILTER (?m = "Alice")
}`
	p := planQuery(t, st, src)
	if p.PushedFilters != 0 {
		t.Fatalf("PushedFilters = %d, want 0", p.PushedFilters)
	}
	bindIdx, filterIdx := -1, -1
	for i, el := range p.Query.Where.Elements {
		switch el.(type) {
		case BindElement:
			bindIdx = i
		case FilterElement:
			filterIdx = i
		}
	}
	if filterIdx < bindIdx {
		t.Fatalf("filter crossed its BIND: filter at %d, bind at %d", filterIdx, bindIdx)
	}
	assertSameResults(t, st, src)
}

// TestPlannerOffPreservesTodaysBehavior: with WithPlanner(false) the
// entry points leave the query untouched (no Planned mark) and the
// runtime greedy reorder still runs.
func TestPlannerOffPreservesTodaysBehavior(t *testing.T) {
	st := loadStore(t, peopleTTL)
	e := NewEngine(st, WithPlanner(false))
	if e.PlannerEnabled() {
		t.Fatal("WithPlanner(false) left the planner on")
	}
	q, err := ParseQuery(`PREFIX ex: <http://example.org/> SELECT ?n WHERE { ?p ex:name ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Select(q); err != nil {
		t.Fatal(err)
	}
	if q.Planned {
		t.Fatal("planner-off engine marked the query as planned")
	}
}

// TestPlannedQueryReusable: a cached Plan result evaluates in the
// planned order on any engine (even planner-off) and passes through the
// planning hook untouched.
func TestPlannedQueryReusable(t *testing.T) {
	st := loadStore(t, peopleTTL)
	const src = `
PREFIX ex: <http://example.org/>
SELECT ?name WHERE { ?p ex:name ?name . ?p a ex:Person . } ORDER BY ?name`
	p := planQuery(t, st, src)
	for _, e := range []*Engine{NewEngine(st), NewEngine(st, WithPlanner(false))} {
		res, err := e.Select(p.Query)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 3 {
			t.Fatalf("planned query returned %d rows, want 3", res.Len())
		}
	}
}

// TestPlannerEquivalenceSweep: planner on and off must agree on every
// construct the planner treats specially — unions, VALUES (with UNDEF),
// MINUS, subselects, nested groups, EXISTS filters, and BOUND-sensitive
// filters.
func TestPlannerEquivalenceSweep(t *testing.T) {
	st := loadStore(t, peopleTTL)
	queries := []string{
		`PREFIX ex: <http://example.org/> SELECT ?t ?n WHERE { { ?p a ex:Person . ?p ex:name ?n . ?p a ?t } UNION { ?p a ex:Robot . ?p ex:name ?n . ?p a ?t } FILTER (?n != "Dave") } ORDER BY ?n`,
		`PREFIX ex: <http://example.org/> SELECT ?p ?c WHERE { VALUES ?c { ex:paris ex:lyon } ?p ex:city ?c . FILTER (?c != ex:lyon) } ORDER BY ?p`,
		`PREFIX ex: <http://example.org/> SELECT ?p WHERE { ?p a ex:Person . MINUS { ?p ex:city ex:lyon } } ORDER BY ?p`,
		`PREFIX ex: <http://example.org/> SELECT ?p ?n WHERE { { SELECT ?p WHERE { ?p a ex:Person } } ?p ex:name ?n . FILTER (?n > "A") } ORDER BY ?n`,
		`PREFIX ex: <http://example.org/> SELECT ?p WHERE { ?p a ex:Person . FILTER EXISTS { ?p ex:knows ?q } } ORDER BY ?p`,
		`PREFIX ex: <http://example.org/> SELECT ?p ?lbl WHERE { ?p ex:city ?c . { ?c ex:label ?lbl . FILTER (?lbl != "Lyon") } } ORDER BY ?p`,
		`PREFIX ex: <http://example.org/> SELECT ?c (COUNT(?p) AS ?n) WHERE { ?p ex:city ?c . ?p ex:name ?m . FILTER (?m != "Bob") } GROUP BY ?c ORDER BY ?c`,
		`PREFIX ex: <http://example.org/> SELECT DISTINCT ?country WHERE { ?p ex:city ?c . ?c ex:inCountry ?country . FILTER (?p != ex:dave) }`,
	}
	for _, q := range queries {
		assertSameResults(t, st, q)
	}
}
