package sparql

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// This file is the engine's resource-accounting layer: per-query rows
// and approximate bytes materialized, the peak in-flight byte total,
// and an optional hard budget that aborts over-budget queries with a
// typed error.
//
// Accounting contract: the same chunk boundaries the cancellation
// checks use (cancelCheckRows) also charge the account, so the enabled
// cost is a handful of atomic adds per 256 rows and the disabled path
// is a single nil check per hook — run.acct stays nil, mirroring the
// span and cancellation fast paths. Byte counts are estimates (term
// struct size plus lexical length, sampled from the first row of each
// charged batch), good for ranking operators and bounding runaway
// intermediates, not for balancing against the allocator.
//
// Budget semantics: QueryAcct.Over is sticky, so racing workers all
// observe it at their next boundary, abandon their chunks, and the
// coordinator converts the condition into *MemLimitError before any
// truncated rows can escape — the same convergence scheme cancellation
// uses.

// WithResources attaches a process-wide resource tracker: every
// accounted query contributes its in-flight bytes to the tracker's
// current/high-water gauges (the /metrics surface). Attaching a tracker
// turns accounting on for every query the engine runs.
func WithResources(t *obs.ResourceTracker) Option {
	return func(e *Engine) { e.resources = t }
}

// WithMaxQueryMem sets a hard per-query budget on in-flight
// materialized bytes (0 = unlimited). A query that exceeds it aborts
// with *MemLimitError. Setting a budget turns accounting on.
func WithMaxQueryMem(n int64) Option {
	return func(e *Engine) {
		if n > 0 {
			e.maxQueryMem = n
		}
	}
}

// Resources returns the engine's resource tracker, or nil.
func (e *Engine) Resources() *obs.ResourceTracker { return e.resources }

// MaxQueryMem returns the per-query in-flight byte budget (0 =
// unlimited).
func (e *Engine) MaxQueryMem() int64 { return e.maxQueryMem }

// MemLimitError reports that a query was aborted because its in-flight
// materialized bytes exceeded the configured budget. It is the
// admission-control signal (429-style at the endpoint): the query was
// not wrong, it was too big — clients should narrow it, not retry it.
type MemLimitError struct {
	Limit int64 // the configured budget
	Peak  int64 // in-flight bytes when the query tripped it
	Rows  int64 // solutions materialized up to that point
}

func (e *MemLimitError) Error() string {
	return fmt.Sprintf("sparql: query exceeded memory budget: %s in flight of %s allowed (%d rows materialized)",
		obs.FormatBytes(e.Peak), obs.FormatBytes(e.Limit), e.Rows)
}

// acctKey carries a caller-opened account through a context.
type acctKey struct{}

// WithQueryAcct returns a context carrying a per-query resource
// account. The endpoint opens one account per request so it can read
// rows/bytes/peak after evaluation for the access log, slow log, and
// workload registry; the engine's entry points adopt a context account
// in preference to opening their own.
func WithQueryAcct(ctx context.Context, a *obs.QueryAcct) context.Context {
	if ctx == nil || a == nil {
		return ctx
	}
	return context.WithValue(ctx, acctKey{}, a)
}

// QueryAcctFrom returns the context's resource account, or nil.
func QueryAcctFrom(ctx context.Context) *obs.QueryAcct {
	if ctx == nil {
		return nil
	}
	a, _ := ctx.Value(acctKey{}).(*obs.QueryAcct)
	return a
}

// bindAcct attaches the run's resource account: a context-injected
// account wins (its opener owns Finish); otherwise the run opens — and
// owns — one when the engine has a tracker or a budget, or when the
// query is traced (so EXPLAIN ANALYZE can render mem=). With none of
// those, acct stays nil and every hook is a nil check.
func (r *run) bindAcct(ctx context.Context, traced bool) {
	if a := QueryAcctFrom(ctx); a != nil {
		r.acct = a
		return
	}
	if r.e.resources != nil || r.e.maxQueryMem > 0 || traced {
		r.acct = obs.NewQueryAcct(r.e.resources, r.e.maxQueryMem)
		r.ownAcct = true
	}
}

// closeAcct finishes a run-owned account (context-injected accounts are
// finished by their opener).
func (r *run) closeAcct() {
	if r.ownAcct {
		r.acct.Finish()
	}
}

// overMem reports whether the query has tripped its byte budget; the
// disabled path is a single nil check inside Over.
func (r *run) overMem() bool { return r.acct.Over() }

// memErr converts the tripped budget into the typed error.
func (r *run) memErr() error {
	return &MemLimitError{Limit: r.acct.Limit(), Peak: r.acct.Peak(), Rows: r.acct.Rows()}
}

// Per-row cost model. A solution is a []rdf.Term; each Term is four
// words of struct (kind + three string headers) plus its lexical
// bytes. Kept deliberately simple — the estimator runs on the hot
// path.
const (
	solutionHeaderBytes = 24 // slice header + allocator slot overhead
	termStructBytes     = 56 // Term struct: kind word + 3 string headers
	// rowRefBytes charges a row retained by reference only (FILTER,
	// MINUS, GROUP BY membership): one slice slot in the keeping
	// container.
	rowRefBytes = 24
)

// approxRowBytes estimates the retained size of one materialized row.
func approxRowBytes(row []rdf.Term) int64 {
	b := int64(solutionHeaderBytes)
	for _, t := range row {
		b += termStructBytes + int64(len(t.Value)) + int64(len(t.Datatype)) + int64(len(t.Lang))
	}
	return b
}

// accountNew charges rows[from:] to the account as freshly materialized
// solutions and returns len(rows), the caller's next mark. The batch's
// byte size is estimated as first-new-row width × count — rows in one
// operator batch share arity, so the sample is representative at a
// fraction of the walking cost. Nil-account calls return immediately.
func accountNew[T ~[]rdf.Term](r *run, rows []T, from int) int {
	n := len(rows)
	if r.acct == nil || n <= from {
		return n
	}
	count := n - from
	r.acct.Materialize(count, approxRowBytes(rows[from])*int64(count))
	return n
}

// accountKept charges rows[from:] as retained by reference (no new term
// storage, just the keeping container's slots) and returns len(rows).
func accountKept[T ~[]rdf.Term](r *run, rows []T, from int) int {
	n := len(rows)
	if r.acct == nil || n <= from {
		return n
	}
	r.acct.Materialize(n-from, int64(n-from)*rowRefBytes)
	return n
}
