package sparql

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestAccountingPreservesResults runs the parallel-operator corpus with
// accounting off, accounting on (tracker attached), and accounting on
// with a generous budget, at sequential and parallel settings, and
// requires identical result tables everywhere. Accounting is
// observation only — it must never change what a query returns.
func TestAccountingPreservesResults(t *testing.T) {
	st := parallelFixture(800)
	plain := NewEngine(st, WithParallelism(1))
	for _, par := range []int{1, 4} {
		tracked := NewEngine(st, WithParallelism(par), WithResources(obs.NewResourceTracker()))
		budgeted := NewEngine(st, WithParallelism(par),
			WithResources(obs.NewResourceTracker()), WithMaxQueryMem(1<<30))
		for _, q := range parallelEquivalenceQueries {
			want, err := plain.QueryString(q)
			if err != nil {
				t.Fatalf("plain: %v", err)
			}
			for name, e := range map[string]*Engine{"tracked": tracked, "budgeted": budgeted} {
				got, err := e.QueryString(q)
				if err != nil {
					t.Fatalf("%s (par=%d): %v\n%s", name, par, err, q)
				}
				if !reflect.DeepEqual(want.Rows, got.Rows) {
					t.Errorf("%s (par=%d) changed results for:\n%s", name, par, q)
				}
			}
		}
	}
}

// TestAccountingCounts checks that an accounted query actually
// accumulates rows and bytes, and that the tracker's books balance to
// zero after the account closes.
func TestAccountingCounts(t *testing.T) {
	st := parallelFixture(400)
	tr := obs.NewResourceTracker()
	e := NewEngine(st, WithResources(tr))
	acct := obs.NewQueryAcct(tr, 0)
	ctx := WithQueryAcct(context.Background(), acct)
	res, err := e.QueryStringContext(ctx,
		`SELECT ?s ?v WHERE { ?s <http://ex/type> <http://ex/Item> ; <http://ex/value> ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 400 {
		t.Fatalf("rows = %d, want 400", res.Len())
	}
	if acct.Rows() < int64(res.Len()) {
		t.Errorf("account rows = %d, want >= %d (final result must be charged)", acct.Rows(), res.Len())
	}
	if acct.Bytes() == 0 || acct.Peak() == 0 {
		t.Errorf("bytes = %d, peak = %d, want > 0", acct.Bytes(), acct.Peak())
	}
	if acct.Inflight() == 0 {
		t.Error("final result should still be in flight before Finish")
	}
	acct.Finish()
	if tr.Inflight() != 0 {
		t.Errorf("tracker inflight = %d after finish, want 0", tr.Inflight())
	}
	if tr.HighWater() < acct.Peak() {
		t.Errorf("tracker high water %d < query peak %d", tr.HighWater(), acct.Peak())
	}
}

// TestMemLimitError checks that a tiny budget aborts evaluation with
// the typed error, at sequential and parallel settings, and that the
// over-budget query is counted on the tracker.
func TestMemLimitError(t *testing.T) {
	st := parallelFixture(800)
	for _, par := range []int{1, 4} {
		tr := obs.NewResourceTracker()
		e := NewEngine(st, WithParallelism(par), WithResources(tr), WithMaxQueryMem(512))
		_, err := e.QueryString(
			`SELECT ?s ?v WHERE { ?s <http://ex/type> <http://ex/Item> ; <http://ex/value> ?v }`)
		var mle *MemLimitError
		if !errors.As(err, &mle) {
			t.Fatalf("par=%d: err = %v, want *MemLimitError", par, err)
		}
		if mle.Limit != 512 || mle.Peak <= 512 || mle.Rows == 0 {
			t.Errorf("par=%d: error fields %+v", par, mle)
		}
		if !strings.Contains(mle.Error(), "memory budget") {
			t.Errorf("par=%d: message %q", par, mle.Error())
		}
		if tr.OverMem() != 1 {
			t.Errorf("par=%d: tracker overMem = %d, want 1", par, tr.OverMem())
		}
		if tr.Inflight() != 0 {
			t.Errorf("par=%d: tracker inflight = %d after abort, want 0", par, tr.Inflight())
		}
	}
}

// TestMemLimitUnderBudget checks a budget well above the query's needs
// changes nothing.
func TestMemLimitUnderBudget(t *testing.T) {
	st := parallelFixture(100)
	e := NewEngine(st, WithMaxQueryMem(1<<30))
	res, err := e.QueryString(`SELECT ?s WHERE { ?s <http://ex/type> <http://ex/Item> }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 100 {
		t.Fatalf("rows = %d, want 100", res.Len())
	}
}

// TestTraceMemAnnotations checks the rendered trace carries the mem:
// summary line and per-operator mem= annotations, while the Outline
// (the golden surface) stays free of them.
func TestTraceMemAnnotations(t *testing.T) {
	st := parallelFixture(400)
	e := NewEngine(st, WithParallelism(1))
	_, tr, err := e.QueryTracedString(
		`SELECT ?s ?v WHERE { ?s <http://ex/type> <http://ex/Item> ; <http://ex/value> ?v FILTER(?v > 40) }`)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rows == 0 || tr.Bytes == 0 || tr.PeakBytes == 0 {
		t.Fatalf("trace totals not set: rows=%d bytes=%d peak=%d", tr.Rows, tr.Bytes, tr.PeakBytes)
	}
	rendered := tr.Render()
	if !strings.Contains(rendered, "mem: rows=") {
		t.Errorf("Render missing mem summary:\n%s", rendered)
	}
	if !strings.Contains(rendered, " mem=") {
		t.Errorf("Render missing per-operator mem=:\n%s", rendered)
	}
	outline := tr.Outline()
	if strings.Contains(outline, "mem") {
		t.Errorf("Outline must stay mem-free for goldens:\n%s", outline)
	}
}

// TestContextAcctAdopted checks the engine adopts a context-injected
// account instead of opening its own, and leaves Finish to the opener.
func TestContextAcctAdopted(t *testing.T) {
	st := parallelFixture(100)
	tr := obs.NewResourceTracker()
	e := NewEngine(st, WithResources(tr))
	acct := obs.NewQueryAcct(tr, 0)
	ctx := WithQueryAcct(context.Background(), acct)
	if _, err := e.QueryStringContext(ctx, `SELECT ?s WHERE { ?s <http://ex/type> <http://ex/Item> }`); err != nil {
		t.Fatal(err)
	}
	if acct.Rows() == 0 {
		t.Fatal("context account saw no accounting — engine opened its own?")
	}
	if tr.Queries() != 0 {
		t.Fatalf("engine finished the caller's account: queries = %d", tr.Queries())
	}
	acct.Finish()
	if tr.Queries() != 1 {
		t.Fatalf("queries = %d after caller finish, want 1", tr.Queries())
	}
}
