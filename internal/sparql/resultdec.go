package sparql

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/rdf"
)

// This file is the wire half of the streaming pipeline: an incremental
// encoder that serializes result rows as they arrive (endpoint.Server
// flushes per chunk) and an incremental decoder that parses the results
// JSON straight off the response body (endpoint.Remote) instead of
// buffering it whole. Both speak the SPARQL 1.1 Query Results JSON
// Format, byte- and semantics-identical to Results.MarshalJSON /
// ResultsFromJSON.

// ResultsDecodeError is the typed failure of DecodeResults. Truncated
// marks a body that ended mid-document — the signature of a dropped
// connection or an aborted streaming response — which a client may
// retry; a false Truncated means the payload was malformed and a retry
// would fail the same way.
type ResultsDecodeError struct {
	Truncated bool
	Err       error
}

func (e *ResultsDecodeError) Error() string {
	if e.Truncated {
		return fmt.Sprintf("sparql: results JSON truncated: %v", e.Err)
	}
	return fmt.Sprintf("sparql: decoding results JSON: %v", e.Err)
}

func (e *ResultsDecodeError) Unwrap() error { return e.Err }

// wrapDecode classifies a raw decode failure: an EOF where more
// document was expected is truncation, everything else is malformed
// input.
func wrapDecode(err error) error {
	return &ResultsDecodeError{
		Truncated: errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF),
		Err:       err,
	}
}

// DecodeResults incrementally decodes a SPARQL JSON result document
// from rd: bindings are parsed one at a time as bytes arrive, so the
// peak footprint is the decoded result table, never table + raw body.
// It accepts exactly the documents ResultsFromJSON accepts (same
// leniency about absent sections and key order) and returns identical
// Results; every failure — truncation, garbage, type mismatches — is a
// *ResultsDecodeError, never a panic.
func DecodeResults(rd io.Reader) (*Results, error) {
	dec := json.NewDecoder(rd)

	tok, err := dec.Token()
	if err != nil {
		return nil, wrapDecode(err)
	}
	if tok == nil { // JSON null: the lenient zero document
		if err := expectEOF(dec); err != nil {
			return nil, err
		}
		return &Results{}, nil
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, wrapDecode(fmt.Errorf("results document must be a JSON object, got %v", tok))
	}

	// Bindings may precede head in a hostile-but-valid document, and a
	// duplicate head later in the document wins (matching encoding/json
	// struct semantics), so rows are buffered as raw binding maps and
	// projected against the final head at the end.
	var head sparqlJSONHead
	var pending []map[string]sparqlJSONTerm
	for dec.More() {
		ktok, err := dec.Token()
		if err != nil {
			return nil, wrapDecode(err)
		}
		key, ok := ktok.(string)
		if !ok {
			return nil, wrapDecode(fmt.Errorf("unexpected token %v for object key", ktok))
		}
		// Key matching is case-insensitive, like Unmarshal's struct
		// field resolution.
		switch {
		case strings.EqualFold(key, "head"):
			// Decoding into the persistent head merges duplicate keys the
			// way Unmarshal does (a later {"head":{}} keeps earlier vars).
			if err := dec.Decode(&head); err != nil {
				return nil, wrapDecode(err)
			}
		case strings.EqualFold(key, "results"):
			if pending, err = decodeResultsSection(dec, pending); err != nil {
				return nil, err
			}
		default:
			if err := skipValue(dec); err != nil {
				return nil, err
			}
		}
	}
	if _, err := dec.Token(); err != nil { // closing '}'
		return nil, wrapDecode(err)
	}
	if err := expectEOF(dec); err != nil {
		return nil, err
	}

	out := &Results{Vars: head.Vars}
	for _, b := range pending {
		row := make([]rdf.Term, len(out.Vars))
		for i, v := range out.Vars {
			if jt, ok := b[v]; ok {
				row[i] = jsonToTerm(jt)
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// decodeResultsSection parses the value of a "results" key: an object
// whose "bindings" array is decoded element-wise. A null "results"
// value leaves previously decoded bindings untouched (Unmarshal skips
// null for struct fields) while a null "bindings" array clears them
// (Unmarshal nils the slice); a fresh array replaces them — all
// matching Unmarshal's merge rules for duplicate keys.
func decodeResultsSection(dec *json.Decoder, pending []map[string]sparqlJSONTerm) ([]map[string]sparqlJSONTerm, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, wrapDecode(err)
	}
	if tok == nil {
		return pending, nil
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return nil, wrapDecode(fmt.Errorf(`"results" must be an object, got %v`, tok))
	}
	for dec.More() {
		ktok, err := dec.Token()
		if err != nil {
			return nil, wrapDecode(err)
		}
		key, ok := ktok.(string)
		if !ok {
			return nil, wrapDecode(fmt.Errorf("unexpected token %v for object key", ktok))
		}
		if !strings.EqualFold(key, "bindings") {
			if err := skipValue(dec); err != nil {
				return nil, err
			}
			continue
		}
		tok, err := dec.Token()
		if err != nil {
			return nil, wrapDecode(err)
		}
		if tok == nil {
			pending = nil
			continue
		}
		if d, ok := tok.(json.Delim); !ok || d != '[' {
			return nil, wrapDecode(fmt.Errorf(`"bindings" must be an array, got %v`, tok))
		}
		pending = nil
		for dec.More() {
			var b map[string]sparqlJSONTerm
			if err := dec.Decode(&b); err != nil {
				return nil, wrapDecode(err)
			}
			pending = append(pending, b)
		}
		if _, err := dec.Token(); err != nil { // closing ']'
			return nil, wrapDecode(err)
		}
	}
	if _, err := dec.Token(); err != nil { // closing '}'
		return nil, wrapDecode(err)
	}
	return pending, nil
}

// skipValue consumes one complete JSON value (validating its syntax,
// exactly as Unmarshal would for an ignored field).
func skipValue(dec *json.Decoder) error {
	var raw json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		return wrapDecode(err)
	}
	return nil
}

// expectEOF fails on trailing non-whitespace after the document,
// matching json.Unmarshal's strictness.
func expectEOF(dec *json.Decoder) error {
	tok, err := dec.Token()
	if err == io.EOF {
		return nil
	}
	if err != nil {
		return &ResultsDecodeError{Err: err}
	}
	return &ResultsDecodeError{Err: fmt.Errorf("trailing data after results document: %v", tok)}
}

// ResultsEncoder incrementally serializes a result stream in the SPARQL
// JSON format, producing exactly the bytes Results.MarshalJSON would
// for the same header and row sequence. Call Head once, Rows any number
// of times, then Close.
type ResultsEncoder struct {
	w        io.Writer
	vars     []string
	wroteRow bool
}

// NewResultsEncoder returns an encoder writing to w.
func NewResultsEncoder(w io.Writer) *ResultsEncoder { return &ResultsEncoder{w: w} }

// Head writes the document prefix — the head object and the opening of
// the bindings array. Must be called once, before Rows.
func (e *ResultsEncoder) Head(vars []string) error {
	e.vars = vars
	hd, err := json.Marshal(sparqlJSONHead{Vars: vars})
	if err != nil {
		return err
	}
	if _, err := io.WriteString(e.w, `{"head":`); err != nil {
		return err
	}
	if _, err := e.w.Write(hd); err != nil {
		return err
	}
	_, err = io.WriteString(e.w, `,"results":{"bindings":[`)
	return err
}

// Rows appends a block of result rows to the bindings array.
func (e *ResultsEncoder) Rows(rows [][]rdf.Term) error {
	for _, row := range rows {
		b := make(map[string]sparqlJSONTerm, len(e.vars))
		for i, v := range e.vars {
			if i >= len(row) || row[i].IsZero() {
				continue
			}
			b[v] = termToJSON(row[i])
		}
		data, err := json.Marshal(b)
		if err != nil {
			return err
		}
		if e.wroteRow {
			if _, err := io.WriteString(e.w, ","); err != nil {
				return err
			}
		}
		e.wroteRow = true
		if _, err := e.w.Write(data); err != nil {
			return err
		}
	}
	return nil
}

// Close terminates the document. The encoder must not be used after.
func (e *ResultsEncoder) Close() error {
	_, err := io.WriteString(e.w, `]}}`)
	return err
}
