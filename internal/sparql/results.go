package sparql

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// Binding returns the value of variable name in row i, or the zero term
// when unbound or absent.
func (r *Results) Binding(i int, name string) rdf.Term {
	for j, v := range r.Vars {
		if v == name {
			return r.Rows[i][j]
		}
	}
	return rdf.Term{}
}

// Len returns the number of solution rows.
func (r *Results) Len() int { return len(r.Rows) }

// sparqlJSON mirrors the SPARQL 1.1 Query Results JSON Format.
type sparqlJSON struct {
	Head    sparqlJSONHead    `json:"head"`
	Results sparqlJSONResults `json:"results"`
}

type sparqlJSONHead struct {
	Vars []string `json:"vars"`
}

type sparqlJSONResults struct {
	Bindings []map[string]sparqlJSONTerm `json:"bindings"`
}

type sparqlJSONTerm struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Datatype string `json:"datatype,omitempty"`
	Lang     string `json:"xml:lang,omitempty"`
}

// MarshalJSON encodes the results in the standard SPARQL JSON format.
func (r *Results) MarshalJSON() ([]byte, error) {
	doc := sparqlJSON{Head: sparqlJSONHead{Vars: r.Vars}}
	doc.Results.Bindings = make([]map[string]sparqlJSONTerm, 0, len(r.Rows))
	for _, row := range r.Rows {
		b := make(map[string]sparqlJSONTerm, len(r.Vars))
		for i, v := range r.Vars {
			t := row[i]
			if t.IsZero() {
				continue
			}
			b[v] = termToJSON(t)
		}
		doc.Results.Bindings = append(doc.Results.Bindings, b)
	}
	return json.Marshal(doc)
}

func termToJSON(t rdf.Term) sparqlJSONTerm {
	switch t.Kind {
	case rdf.KindIRI:
		return sparqlJSONTerm{Type: "uri", Value: t.Value}
	case rdf.KindBlank:
		return sparqlJSONTerm{Type: "bnode", Value: t.Value}
	default:
		out := sparqlJSONTerm{Type: "literal", Value: t.Value, Lang: t.Lang}
		if t.Lang == "" && t.Datatype != "" && t.Datatype != rdf.XSDString {
			out.Datatype = t.Datatype
		}
		return out
	}
}

// ResultsFromJSON decodes a SPARQL JSON result document.
func ResultsFromJSON(data []byte) (*Results, error) {
	var doc sparqlJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("sparql: decoding results JSON: %w", err)
	}
	out := &Results{Vars: doc.Head.Vars}
	for _, b := range doc.Results.Bindings {
		row := make([]rdf.Term, len(out.Vars))
		for i, v := range out.Vars {
			jt, ok := b[v]
			if !ok {
				continue
			}
			row[i] = jsonToTerm(jt)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func jsonToTerm(jt sparqlJSONTerm) rdf.Term {
	switch jt.Type {
	case "uri":
		return rdf.NewIRI(jt.Value)
	case "bnode":
		return rdf.NewBlank(jt.Value)
	default:
		if jt.Lang != "" {
			return rdf.NewLangLiteral(jt.Value, jt.Lang)
		}
		if jt.Datatype != "" {
			return rdf.NewTypedLiteral(jt.Value, jt.Datatype)
		}
		return rdf.NewLiteral(jt.Value)
	}
}

// EncodeCSV renders the results as RFC 4180 CSV per the SPARQL 1.1 CSV
// results format (plain lexical values).
func (r *Results) EncodeCSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Vars, ","))
	b.WriteString("\r\n")
	for _, row := range r.Rows {
		for i, t := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(t.Value))
		}
		b.WriteString("\r\n")
	}
	return b.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// EncodeTSV renders the results in the SPARQL 1.1 TSV format, with full
// term syntax.
func (r *Results) EncodeTSV() string {
	var b strings.Builder
	for i, v := range r.Vars {
		if i > 0 {
			b.WriteByte('\t')
		}
		b.WriteByte('?')
		b.WriteString(v)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		for i, t := range row {
			if i > 0 {
				b.WriteByte('\t')
			}
			if !t.IsZero() {
				b.WriteString(t.String())
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table renders an aligned text table for CLI display.
func (r *Results) Table() string {
	widths := make([]int, len(r.Vars))
	for i, v := range r.Vars {
		widths[i] = len(v)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(r.Vars))
		for i, t := range row {
			s := ""
			if !t.IsZero() {
				s = t.Value
			}
			cells[ri][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, v := range r.Vars {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], v)
	}
	b.WriteByte('\n')
	for i := range r.Vars {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
