package sparql

import (
	"encoding/json"
	"testing"
)

// FuzzResultsFromJSON checks the SPARQL results JSON decoder — the
// surface a truncating or corrupting network fault hits — never panics
// and that everything it accepts is internally consistent and survives
// a re-encode round trip.
func FuzzResultsFromJSON(f *testing.F) {
	seeds := []string{
		`{"head":{"vars":["s","n"]},"results":{"bindings":[` +
			`{"s":{"type":"uri","value":"http://x/a"},"n":{"type":"literal","value":"1",` +
			`"datatype":"http://www.w3.org/2001/XMLSchema#integer"}}]}}`,
		`{"head":{"vars":["s"]},"results":{"bindings":[{"s":{"type":"bnode","value":"b0"}}]}}`,
		`{"head":{"vars":["l"]},"results":{"bindings":[{"l":{"type":"literal","value":"hi","xml:lang":"en"}}]}}`,
		`{"head":{"vars":[]},"results":{"bindings":[]}}`,
		`{"head":{"vars":["s"]},"results":{"bindings":[{}]}}`,
		`{"head":{"vars":["s"]},"results":{"bindings":[{"other":{"type":"uri","value":"http://x"}}]}}`,
		`{"head":{"vars":["s"]},"results":{"bindings":[{"s":{` /* truncated mid-object */,
		`{"boolean":true}`,
		`null`,
		`[]`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := ResultsFromJSON(data)
		if err != nil {
			return
		}
		for i, row := range res.Rows {
			if len(row) != len(res.Vars) {
				t.Fatalf("row %d has %d terms for %d vars", i, len(row), len(res.Vars))
			}
		}
		// The encoders are what the server runs on decoded-and-served
		// results; they must not panic on anything the decoder accepts.
		_ = res.EncodeCSV()
		_ = res.EncodeTSV()
		// JSON round trip: re-marshaling a decoded result must produce
		// a document the decoder accepts again with the same shape.
		out, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("re-encoding decoded results: %v", err)
		}
		again, err := ResultsFromJSON(out)
		if err != nil {
			t.Fatalf("re-decoding encoded results: %v", err)
		}
		if len(again.Rows) != len(res.Rows) || len(again.Vars) != len(res.Vars) {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				len(res.Rows), len(res.Vars), len(again.Rows), len(again.Vars))
		}
	})
}
