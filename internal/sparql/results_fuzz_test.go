package sparql

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// fuzzResultSeeds is the shared seed corpus for both results-JSON
// decoders: well-formed documents for every term kind, boundary shapes
// (empty vars, empty bindings, unknown variables), and the hostile
// cases a fault-injected network produces (truncation mid-object,
// non-object documents, empty input).
var fuzzResultSeeds = []string{
	`{"head":{"vars":["s","n"]},"results":{"bindings":[` +
		`{"s":{"type":"uri","value":"http://x/a"},"n":{"type":"literal","value":"1",` +
		`"datatype":"http://www.w3.org/2001/XMLSchema#integer"}}]}}`,
	`{"head":{"vars":["s"]},"results":{"bindings":[{"s":{"type":"bnode","value":"b0"}}]}}`,
	`{"head":{"vars":["l"]},"results":{"bindings":[{"l":{"type":"literal","value":"hi","xml:lang":"en"}}]}}`,
	`{"head":{"vars":[]},"results":{"bindings":[]}}`,
	`{"head":{"vars":["s"]},"results":{"bindings":[{}]}}`,
	`{"head":{"vars":["s"]},"results":{"bindings":[{"other":{"type":"uri","value":"http://x"}}]}}`,
	`{"head":{"vars":["s"]},"results":{"bindings":[{"s":{`, /* truncated mid-object */
	`{"boolean":true}`,
	`null`,
	`[]`,
	``,
	// Key-order and duplicate-key torture for the incremental decoder.
	`{"results":{"bindings":[{"s":{"type":"uri","value":"http://x"}}]},"head":{"vars":["s"]}}`,
	`{"head":{"vars":["a"]},"head":{"vars":["s"]},"results":{"bindings":[{"s":{"type":"uri","value":"http://x"}}]}}`,
	`{"results":{"bindings":[{"s":{"type":"uri","value":"http://x"}}]},"results":{"bindings":null}}`,
	`{"head":{"vars":["s"],"link":["http://meta"]},"results":{"bindings":[null]},"extra":[1,{"k":2}]}`,
	`{"head":{"vars":["s"]},"results":{"bindings":[{"s":{"type":"uri","value":"http://x"}}]}}trailing`,
}

// FuzzResultsFromJSON checks the SPARQL results JSON decoder — the
// surface a truncating or corrupting network fault hits — never panics
// and that everything it accepts is internally consistent and survives
// a re-encode round trip.
func FuzzResultsFromJSON(f *testing.F) {
	for _, s := range fuzzResultSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := ResultsFromJSON(data)
		if err != nil {
			return
		}
		for i, row := range res.Rows {
			if len(row) != len(res.Vars) {
				t.Fatalf("row %d has %d terms for %d vars", i, len(row), len(res.Vars))
			}
		}
		// The encoders are what the server runs on decoded-and-served
		// results; they must not panic on anything the decoder accepts.
		_ = res.EncodeCSV()
		_ = res.EncodeTSV()
		// JSON round trip: re-marshaling a decoded result must produce
		// a document the decoder accepts again with the same shape.
		out, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("re-encoding decoded results: %v", err)
		}
		again, err := ResultsFromJSON(out)
		if err != nil {
			t.Fatalf("re-decoding encoded results: %v", err)
		}
		if len(again.Rows) != len(res.Rows) || len(again.Vars) != len(res.Vars) {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				len(res.Rows), len(res.Vars), len(again.Rows), len(again.Vars))
		}
	})
}

// FuzzResultsDecoder fuzzes the incremental results-JSON decoder — the
// path every streamed response body takes in endpoint.Remote — against
// the materialized ResultsFromJSON as the reference: it must never
// panic, must fail with a typed *ResultsDecodeError on anything it
// rejects, and must accept exactly the documents the reference accepts,
// producing identical result tables.
func FuzzResultsDecoder(f *testing.F) {
	for _, s := range fuzzResultSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeResults(bytes.NewReader(data))
		ref, refErr := ResultsFromJSON(data)
		if err != nil {
			var de *ResultsDecodeError
			if !errors.As(err, &de) {
				t.Fatalf("decode error is not a *ResultsDecodeError: %T %v", err, err)
			}
			if refErr == nil {
				t.Fatalf("incremental decoder rejected a document the reference accepts: %v\ninput: %q", err, data)
			}
			return
		}
		if refErr != nil {
			t.Fatalf("incremental decoder accepted a document the reference rejects (%v)\ninput: %q", refErr, data)
		}
		if len(res.Vars) != len(ref.Vars) || len(res.Rows) != len(ref.Rows) {
			t.Fatalf("shape mismatch: %dx%d vs reference %dx%d", len(res.Rows), len(res.Vars), len(ref.Rows), len(ref.Vars))
		}
		for i, v := range ref.Vars {
			if res.Vars[i] != v {
				t.Fatalf("var %d: %q vs reference %q", i, res.Vars[i], v)
			}
		}
		for i := range ref.Rows {
			for j := range ref.Rows[i] {
				if res.Rows[i][j] != ref.Rows[i][j] {
					t.Fatalf("row %d col %d: %v vs reference %v", i, j, res.Rows[i][j], ref.Rows[i][j])
				}
			}
		}
	})
}
