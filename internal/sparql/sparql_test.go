package sparql

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/turtle"
)

// loadStore builds a store from Turtle source (default graph).
func loadStore(t *testing.T, src string) *store.Store {
	t.Helper()
	triples, _, err := turtle.Parse(src)
	if err != nil {
		t.Fatalf("turtle: %v", err)
	}
	st := store.New()
	st.InsertTriples(rdf.Term{}, triples)
	return st
}

const peopleTTL = `
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:alice a ex:Person ; ex:name "Alice" ; ex:age 30 ; ex:knows ex:bob ; ex:city ex:paris .
ex:bob   a ex:Person ; ex:name "Bob"   ; ex:age 25 ; ex:knows ex:carol ; ex:city ex:lyon .
ex:carol a ex:Person ; ex:name "Carol" ; ex:age 35 ; ex:city ex:paris .
ex:dave  a ex:Robot  ; ex:name "Dave" .
ex:paris ex:label "Paris" ; ex:inCountry ex:france .
ex:lyon  ex:label "Lyon"  ; ex:inCountry ex:france .
ex:france ex:label "France" ; ex:inContinent ex:europe .
ex:europe ex:label "Europe" .
`

func sel(t *testing.T, st *store.Store, q string) *Results {
	t.Helper()
	res, err := NewEngine(st).QueryString(q)
	if err != nil {
		t.Fatalf("query failed: %v\n%s", err, q)
	}
	return res
}

func TestSelectBasic(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?name WHERE { ?p a ex:Person ; ex:name ?name } ORDER BY ?name`)
	if res.Len() != 3 {
		t.Fatalf("rows = %d, want 3", res.Len())
	}
	names := []string{}
	for i := range res.Rows {
		names = append(names, res.Binding(i, "name").Value)
	}
	if strings.Join(names, ",") != "Alice,Bob,Carol" {
		t.Fatalf("names = %v", names)
	}
}

func TestSelectStar(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT * WHERE { ?p ex:knows ?q }`)
	if res.Len() != 2 || len(res.Vars) != 2 {
		t.Fatalf("rows=%d vars=%v", res.Len(), res.Vars)
	}
}

func TestFilterComparisons(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?name WHERE { ?p ex:name ?name ; ex:age ?a FILTER(?a > 26 && ?a <= 35) } ORDER BY ?name`)
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2 (Alice, Carol)", res.Len())
	}
}

func TestFilterStringFunctions(t *testing.T) {
	st := loadStore(t, peopleTTL)
	cases := []struct {
		filter string
		want   int
	}{
		{`FILTER(STRSTARTS(?name, "A"))`, 1},
		{`FILTER(CONTAINS(?name, "o"))`, 2}, // Bob, Carol
		{`FILTER(STRENDS(?name, "e"))`, 1},  // Alice
		{`FILTER(REGEX(?name, "^[AB]"))`, 2},
		{`FILTER(STRLEN(?name) = 3)`, 1}, // Bob
		{`FILTER(UCASE(?name) = "ALICE")`, 1},
		{`FILTER(LCASE(?name) = "carol")`, 1},
		{`FILTER(SUBSTR(?name, 1, 2) = "Bo")`, 1},
		{`FILTER(?name IN ("Alice", "Bob"))`, 2},
		{`FILTER(?name NOT IN ("Alice", "Bob", "Carol"))`, 0},
	}
	for _, c := range cases {
		q := `PREFIX ex: <http://example.org/>
SELECT ?name WHERE { ?p a ex:Person ; ex:name ?name ` + c.filter + ` }`
		if got := sel(t, st, q).Len(); got != c.want {
			t.Errorf("%s: rows = %d, want %d", c.filter, got, c.want)
		}
	}
}

func TestOptional(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?name ?friend WHERE {
  ?p a ex:Person ; ex:name ?name
  OPTIONAL { ?p ex:knows ?friend }
} ORDER BY ?name`)
	if res.Len() != 3 {
		t.Fatalf("rows = %d, want 3", res.Len())
	}
	// Carol knows nobody: friend unbound.
	if !res.Binding(2, "friend").IsZero() {
		t.Errorf("carol's friend should be unbound, got %v", res.Binding(2, "friend"))
	}
	if res.Binding(0, "friend").IsZero() {
		t.Errorf("alice's friend should be bound")
	}
}

func TestOptionalWithBound(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?name ?label WHERE {
  ?p ex:name ?name ; ex:city ?c
  OPTIONAL { ?c ex:label ?label }
} ORDER BY ?name`)
	if res.Len() != 3 {
		t.Fatalf("rows = %d", res.Len())
	}
	if res.Binding(0, "label").Value != "Paris" {
		t.Errorf("alice label = %v", res.Binding(0, "label"))
	}
}

func TestUnion(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?x WHERE {
  { ?x a ex:Person } UNION { ?x a ex:Robot }
}`)
	if res.Len() != 4 {
		t.Fatalf("rows = %d, want 4", res.Len())
	}
}

func TestBind(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?name ?dbl WHERE {
  ?p ex:name ?name ; ex:age ?a
  BIND(?a * 2 AS ?dbl)
  FILTER(?dbl = 50)
}`)
	if res.Len() != 1 || res.Binding(0, "name").Value != "Bob" {
		t.Fatalf("rows=%d", res.Len())
	}
}

func TestValuesJoin(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?name WHERE {
  VALUES ?name { "Alice" "Carol" "Zed" }
  ?p ex:name ?name
} ORDER BY ?name`)
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2", res.Len())
	}
}

func TestValuesMultiColumn(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?name ?a WHERE {
  VALUES (?name ?a) { ("Alice" 30) ("Bob" 99) ("Carol" UNDEF) }
  ?p ex:name ?name ; ex:age ?a
} ORDER BY ?name`)
	// Alice matches (30), Bob mismatches (99 vs 25), Carol matches any.
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2", res.Len())
	}
}

func TestGroupByAggregates(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?city (COUNT(?p) AS ?n) (SUM(?a) AS ?total) (AVG(?a) AS ?avg) (MIN(?a) AS ?lo) (MAX(?a) AS ?hi)
WHERE { ?p ex:city ?city ; ex:age ?a }
GROUP BY ?city ORDER BY DESC(?n)`)
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2", res.Len())
	}
	// paris: alice(30) + carol(35)
	if res.Binding(0, "n").Value != "2" || res.Binding(0, "total").Value != "65" {
		t.Fatalf("paris row wrong: %v", res.Rows[0])
	}
	if res.Binding(0, "lo").Value != "30" || res.Binding(0, "hi").Value != "35" {
		t.Fatalf("min/max wrong: %v", res.Rows[0])
	}
	if res.Binding(1, "n").Value != "1" {
		t.Fatalf("lyon row wrong: %v", res.Rows[1])
	}
}

func TestCountStarAndDistinct(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT (COUNT(*) AS ?n) (COUNT(DISTINCT ?city) AS ?cities)
WHERE { ?p ex:city ?city }`)
	if res.Binding(0, "n").Value != "3" {
		t.Fatalf("count(*) = %v", res.Binding(0, "n"))
	}
	if res.Binding(0, "cities").Value != "2" {
		t.Fatalf("count(distinct) = %v", res.Binding(0, "cities"))
	}
}

func TestImplicitGroupOnEmpty(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT (COUNT(*) AS ?n) WHERE { ?p a ex:Unicorn }`)
	if res.Len() != 1 || res.Binding(0, "n").Value != "0" {
		t.Fatalf("empty count = %v (%d rows)", res.Rows, res.Len())
	}
}

func TestHaving(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?city (COUNT(?p) AS ?n) WHERE { ?p ex:city ?city }
GROUP BY ?city HAVING (COUNT(?p) > 1)`)
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1", res.Len())
	}
	if !strings.HasSuffix(res.Binding(0, "city").Value, "paris") {
		t.Fatalf("city = %v", res.Binding(0, "city"))
	}
}

func TestGroupConcatAndSample(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT (GROUP_CONCAT(?name ; SEPARATOR=", ") AS ?all) (SAMPLE(?name) AS ?one)
WHERE { ?p a ex:Person ; ex:name ?name } ORDER BY ?name`)
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	all := res.Binding(0, "all").Value
	for _, n := range []string{"Alice", "Bob", "Carol"} {
		if !strings.Contains(all, n) {
			t.Errorf("GROUP_CONCAT missing %s: %q", n, all)
		}
	}
	if res.Binding(0, "one").IsZero() {
		t.Error("SAMPLE unbound")
	}
}

func TestDistinctLimitOffset(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT DISTINCT ?city WHERE { ?p ex:city ?city } ORDER BY ?city`)
	if res.Len() != 2 {
		t.Fatalf("distinct rows = %d", res.Len())
	}
	res = sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?name WHERE { ?p ex:name ?name } ORDER BY ?name LIMIT 2 OFFSET 1`)
	if res.Len() != 2 || res.Binding(0, "name").Value != "Bob" {
		t.Fatalf("limit/offset wrong: %v", res.Rows)
	}
}

func TestAsk(t *testing.T) {
	st := loadStore(t, peopleTTL)
	e := NewEngine(st)
	q, err := ParseQuery(`PREFIX ex: <http://example.org/> ASK { ex:alice ex:knows ex:bob }`)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := e.Ask(q)
	if err != nil || !ok {
		t.Fatalf("ASK = %v, %v", ok, err)
	}
	q, _ = ParseQuery(`PREFIX ex: <http://example.org/> ASK { ex:bob ex:knows ex:alice }`)
	ok, _ = e.Ask(q)
	if ok {
		t.Fatal("ASK should be false")
	}
}

func TestConstruct(t *testing.T) {
	st := loadStore(t, peopleTTL)
	e := NewEngine(st)
	q, err := ParseQuery(`
PREFIX ex: <http://example.org/>
CONSTRUCT { ?p ex:livesIn ?country } WHERE { ?p ex:city ?c . ?c ex:inCountry ?country }`)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := e.Construct(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("constructed %d triples, want 3", len(ts))
	}
}

func TestSubquery(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?name ?n WHERE {
  ?p ex:name ?name ; ex:city ?city
  { SELECT ?city (COUNT(?q) AS ?n) WHERE { ?q ex:city ?city } GROUP BY ?city }
} ORDER BY ?name`)
	if res.Len() != 3 {
		t.Fatalf("rows = %d", res.Len())
	}
	if res.Binding(0, "n").Value != "2" { // Alice in paris
		t.Fatalf("alice city count = %v", res.Binding(0, "n"))
	}
	if res.Binding(1, "n").Value != "1" { // Bob in lyon
		t.Fatalf("bob city count = %v", res.Binding(1, "n"))
	}
}

func TestMinusAndNotExists(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p a ex:Person MINUS { ?p ex:knows ?x } }`)
	if res.Len() != 1 || !strings.HasSuffix(res.Binding(0, "p").Value, "carol") {
		t.Fatalf("MINUS result: %v", res.Rows)
	}
	res = sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p a ex:Person FILTER NOT EXISTS { ?p ex:knows ?x } }`)
	if res.Len() != 1 || !strings.HasSuffix(res.Binding(0, "p").Value, "carol") {
		t.Fatalf("NOT EXISTS result: %v", res.Rows)
	}
	res = sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p a ex:Person FILTER EXISTS { ?p ex:knows ?x } }`)
	if res.Len() != 2 {
		t.Fatalf("EXISTS rows = %d", res.Len())
	}
}

func TestPropertyPaths(t *testing.T) {
	st := loadStore(t, peopleTTL)
	// sequence
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:city/ex:inCountry ex:france }`)
	if res.Len() != 3 {
		t.Fatalf("sequence path rows = %d", res.Len())
	}
	// inverse
	res = sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?c WHERE { ex:france ^ex:inCountry ?c } ORDER BY ?c`)
	if res.Len() != 2 {
		t.Fatalf("inverse path rows = %d", res.Len())
	}
	// alternative
	res = sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?x WHERE { ex:paris (ex:inCountry|ex:label) ?x }`)
	if res.Len() != 2 {
		t.Fatalf("alternative path rows = %d", res.Len())
	}
	// one-or-more closure: knows+
	res = sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?x WHERE { ex:alice ex:knows+ ?x } ORDER BY ?x`)
	if res.Len() != 2 {
		t.Fatalf("knows+ rows = %d: %v", res.Len(), res.Rows)
	}
	// zero-or-more includes the start node
	res = sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?x WHERE { ex:alice ex:knows* ?x }`)
	if res.Len() != 3 {
		t.Fatalf("knows* rows = %d", res.Len())
	}
	// long sequence through hierarchy
	res = sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:city/ex:inCountry/ex:inContinent ex:europe }`)
	if res.Len() != 3 {
		t.Fatalf("deep sequence rows = %d", res.Len())
	}
}

func TestNamedGraphs(t *testing.T) {
	st := store.New()
	g := rdf.NewIRI("http://example.org/g1")
	st.Insert(rdf.NewQuad(rdf.NewIRI("http://example.org/s"), rdf.NewIRI("http://example.org/p"), rdf.NewLiteral("in-named"), g))
	st.Insert(rdf.NewQuad(rdf.NewIRI("http://example.org/s"), rdf.NewIRI("http://example.org/p"), rdf.NewLiteral("in-default"), rdf.Term{}))

	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?o WHERE { ex:s ex:p ?o }`)
	if res.Len() != 1 || res.Binding(0, "o").Value != "in-default" {
		t.Fatalf("default graph query: %v", res.Rows)
	}
	res = sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?o WHERE { GRAPH ex:g1 { ex:s ex:p ?o } }`)
	if res.Len() != 1 || res.Binding(0, "o").Value != "in-named" {
		t.Fatalf("named graph query: %v", res.Rows)
	}
	res = sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?g ?o WHERE { GRAPH ?g { ?s ex:p ?o } }`)
	if res.Len() != 1 || res.Binding(0, "g").Value != "http://example.org/g1" {
		t.Fatalf("graph variable query: %v", res.Rows)
	}
}

func TestExpressionFunctions(t *testing.T) {
	st := loadStore(t, `
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:o ex:date "2014-03-15"^^xsd:date ; ex:month "2014-03"^^xsd:gYearMonth ; ex:tag "hello"@en ; ex:num 2.5 .`)
	cases := []struct {
		expr string
		want string
	}{
		{`YEAR(?date)`, "2014"},
		{`MONTH(?date)`, "3"},
		{`DAY(?date)`, "15"},
		{`YEAR(?month)`, "2014"},
		{`STR(?num)`, "2.5"},
		{`LANG(?tag)`, "en"},
		{`STRLEN(?tag)`, "5"},
		{`ABS(-3)`, "3"},
		{`CEIL(?num)`, "3"},
		{`FLOOR(?num)`, "2"},
		{`ROUND(?num)`, "3"},
		{`CONCAT("a", "b", STR(5))`, "ab5"},
		{`IF(?num > 2, "big", "small")`, "big"},
		{`COALESCE(?nothere, "fallback")`, "fallback"},
	}
	for _, c := range cases {
		q := `PREFIX ex: <http://example.org/>
SELECT (` + c.expr + ` AS ?v) WHERE { ex:o ex:date ?date ; ex:month ?month ; ex:tag ?tag ; ex:num ?num }`
		res := sel(t, st, q)
		if res.Len() != 1 {
			t.Errorf("%s: no rows", c.expr)
			continue
		}
		if got := res.Binding(0, "v").Value; got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
}

func TestTypePredicates(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?o WHERE { ex:alice ex:name ?o FILTER(ISLITERAL(?o) && !ISIRI(?o) && !ISBLANK(?o) && BOUND(?o)) }`)
	if res.Len() != 1 {
		t.Fatalf("type predicates failed: %d rows", res.Len())
	}
	res = sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?o WHERE { ex:alice ex:age ?o FILTER(ISNUMERIC(?o) && DATATYPE(?o) = <http://www.w3.org/2001/XMLSchema#integer>) }`)
	if res.Len() != 1 {
		t.Fatalf("numeric predicates failed: %d rows", res.Len())
	}
}

func TestUpdateInsertDeleteData(t *testing.T) {
	st := store.New()
	e := NewEngine(st)
	err := e.ExecuteString(`
PREFIX ex: <http://example.org/>
INSERT DATA {
  ex:s ex:p "v1" .
  ex:s ex:p "v2" .
  GRAPH ex:g { ex:s ex:p "v3" }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len(rdf.Term{}) != 2 || st.Len(rdf.NewIRI("http://example.org/g")) != 1 {
		t.Fatalf("insert data: default=%d named=%d", st.Len(rdf.Term{}), st.Len(rdf.NewIRI("http://example.org/g")))
	}
	err = e.ExecuteString(`
PREFIX ex: <http://example.org/>
DELETE DATA { ex:s ex:p "v1" }`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len(rdf.Term{}) != 1 {
		t.Fatalf("delete data left %d", st.Len(rdf.Term{}))
	}
}

func TestUpdateModify(t *testing.T) {
	st := loadStore(t, peopleTTL)
	e := NewEngine(st)
	err := e.ExecuteString(`
PREFIX ex: <http://example.org/>
DELETE { ?p ex:age ?a } INSERT { ?p ex:age 99 } WHERE { ?p ex:age ?a FILTER(?a > 28) }`)
	if err != nil {
		t.Fatal(err)
	}
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?p WHERE { ?p ex:age 99 }`)
	if res.Len() != 2 {
		t.Fatalf("modified rows = %d, want 2", res.Len())
	}
}

func TestUpdateDeleteWhere(t *testing.T) {
	st := loadStore(t, peopleTTL)
	e := NewEngine(st)
	if err := e.ExecuteString(`
PREFIX ex: <http://example.org/>
DELETE WHERE { ?p ex:knows ?q }`); err != nil {
		t.Fatal(err)
	}
	res := sel(t, st, `PREFIX ex: <http://example.org/> SELECT ?p WHERE { ?p ex:knows ?q }`)
	if res.Len() != 0 {
		t.Fatalf("knows triples remain: %d", res.Len())
	}
}

func TestUpdateClear(t *testing.T) {
	st := loadStore(t, peopleTTL)
	e := NewEngine(st)
	if err := e.ExecuteString(`CLEAR DEFAULT`); err != nil {
		t.Fatal(err)
	}
	if st.Len(rdf.Term{}) != 0 {
		t.Fatalf("CLEAR DEFAULT left %d triples", st.Len(rdf.Term{}))
	}
}

func TestResultsJSONRoundTrip(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?name ?age WHERE { ?p ex:name ?name OPTIONAL { ?p ex:age ?age } } ORDER BY ?name`)
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ResultsFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != res.Len() || len(back.Vars) != len(res.Vars) {
		t.Fatalf("round trip changed shape")
	}
	for i := range res.Rows {
		for j := range res.Vars {
			if res.Rows[i][j] != back.Rows[i][j] {
				t.Errorf("cell (%d,%d): %v != %v", i, j, res.Rows[i][j], back.Rows[i][j])
			}
		}
	}
}

func TestResultsCSVTSV(t *testing.T) {
	st := loadStore(t, peopleTTL)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?name WHERE { ex:alice ex:name ?name }`)
	csv := res.EncodeCSV()
	if !strings.HasPrefix(csv, "name\r\n") || !strings.Contains(csv, "Alice") {
		t.Errorf("CSV = %q", csv)
	}
	tsv := res.EncodeTSV()
	if !strings.HasPrefix(tsv, "?name\n") || !strings.Contains(tsv, `"Alice"`) {
		t.Errorf("TSV = %q", tsv)
	}
	if tbl := res.Table(); !strings.Contains(tbl, "Alice") {
		t.Errorf("Table = %q", tbl)
	}
}

func TestPlannerAblationSameResults(t *testing.T) {
	st := loadStore(t, peopleTTL)
	q := `
PREFIX ex: <http://example.org/>
SELECT ?name ?country WHERE {
  ?p a ex:Person .
  ?p ex:name ?name .
  ?p ex:city ?c .
  ?c ex:inCountry ?country .
} ORDER BY ?name`
	e1 := NewEngine(st)
	e2 := NewEngine(st)
	e2.DisableReorder = true
	r1, err := e1.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != r2.Len() {
		t.Fatalf("planner changed result count: %d vs %d", r1.Len(), r2.Len())
	}
	for i := range r1.Rows {
		for j := range r1.Vars {
			if r1.Rows[i][j] != r2.Rows[i][j] {
				t.Fatalf("planner changed results at (%d,%d)", i, j)
			}
		}
	}
}

func TestParseErrorsSurface(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT ?x`,
		`SELECT ?x WHERE`,
		`SELECT ?x WHERE { ?x }`,
		`SELECT ?x WHERE { ?x <p> }`,
		`SELECT ?x WHERE { ?x <p> ?y`,
		`SELECT ?x WHERE { ?x nope:p ?y }`,
		`ASK { FILTER }`,
		`SELECT ?x WHERE { ?x <p> ?y } GROUP BY`,
		`SELECT ?x WHERE { ?x <p> ?y } LIMIT abc`,
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) succeeded, want error", src)
		}
	}
}

func TestBlankNodePatternInQuery(t *testing.T) {
	st := loadStore(t, `
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix ex: <http://example.org/> .
ex:dsd qb:component [ qb:dimension ex:dim1 ] ;
       qb:component [ qb:dimension ex:dim2 ] .`)
	res := sel(t, st, `
PREFIX qb: <http://purl.org/linked-data/cube#>
PREFIX ex: <http://example.org/>
SELECT ?d WHERE { ex:dsd qb:component [ qb:dimension ?d ] } ORDER BY ?d`)
	if res.Len() != 2 {
		t.Fatalf("blank node pattern rows = %d", res.Len())
	}
}

func TestNumericLiteralForms(t *testing.T) {
	st := loadStore(t, `
@prefix ex: <http://example.org/> .
ex:a ex:v 10 . ex:b ex:v 2.5 . ex:c ex:v 1e2 .`)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?s WHERE { ?s ex:v ?v FILTER(?v >= 2.5 && ?v <= 100) } ORDER BY ?s`)
	if res.Len() != 3 {
		t.Fatalf("numeric comparison across types: %d rows", res.Len())
	}
}

func TestArithmetic(t *testing.T) {
	st := loadStore(t, `@prefix ex: <http://example.org/> . ex:a ex:v 10 .`)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT (?v + 5 AS ?add) (?v - 3 AS ?sub) (?v * 2 AS ?mul) (?v / 4 AS ?div) (-?v AS ?neg)
WHERE { ex:a ex:v ?v }`)
	checks := map[string]string{"add": "15", "sub": "7", "mul": "20", "div": "2.5", "neg": "-10"}
	for k, want := range checks {
		if got := res.Binding(0, k).Value; got != want {
			t.Errorf("%s = %q, want %q", k, got, want)
		}
	}
}

func TestOrderBySemantics(t *testing.T) {
	st := loadStore(t, `
@prefix ex: <http://example.org/> .
ex:a ex:v 20 . ex:b ex:v 3 . ex:c ex:v 100 .`)
	res := sel(t, st, `
PREFIX ex: <http://example.org/>
SELECT ?s ?v WHERE { ?s ex:v ?v } ORDER BY DESC(?v)`)
	if res.Binding(0, "v").Value != "100" || res.Binding(2, "v").Value != "3" {
		t.Fatalf("numeric DESC order wrong: %v", res.Rows)
	}
}
