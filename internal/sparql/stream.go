package sparql

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/rdf"
	"repro/internal/store"
)

// This file implements the chunked pull pipeline: the streaming
// counterpart of evalGroup/evalSelect. Operators consume and produce
// bounded chunks of solutions instead of whole intermediate tables, so
// one query's in-flight bytes are proportional to pipeline depth ×
// chunk size rather than to the largest intermediate result.
//
// Design rules (see DESIGN.md §16):
//
//   - The pipeline is fully synchronous: every stage's next() runs on
//     the coordinating goroutine, so there are no pipeline goroutines
//     to leak and SLICE's early exit is just "stop pulling".
//     Parallelism still applies *within* a chunk — stages call the same
//     order-preserving parallel kernels (joinPatternPar, filterRowsPar,
//     ...) that the materialized path uses, on chunks large enough to
//     engage them.
//   - Chunk boundaries carry the cross-cutting concerns: boundIter
//     checks cancellation, charges the chunk to the query account, and
//     releases the previous chunk — PR 5's cancellation contract and
//     PR 7's accounting hooks, moved from operator interiors to chunk
//     edges. Kernels run on an account-free run copy (run.kernel) so
//     nothing double-charges.
//   - Pipeline breakers materialize: ORDER BY and GROUP BY drain their
//     whole input (drainStream) and fall back to the proven
//     materialized tail (finishSelect), because sorting and grouping
//     need every row anyway. UNION and GRAPH ?var buffer their *input*
//     (usually small) and replay it branch-major / graph-major to keep
//     the materialized result order. MINUS evaluates its right side
//     once; SUBSELECT evaluates the subquery once. DISTINCT streams its
//     emission but retains the seen-key set.
//   - BGP joins are incremental: bgpIter holds one buffer per join
//     level and advances the deepest level with pending work, so a
//     1-row → 80k-match fan-out is emitted chunk by chunk through a
//     resumable store.Scan cursor instead of materialized at once.
//
// Streaming engages only on the untraced path (run.streaming): a traced
// query needs whole-operator row counts for its spans, so it keeps the
// materialized evaluator and its goldens stay byte-identical.

// chunkIter is the pull side of the pipeline. next returns the next
// non-empty chunk, or (nil, nil) once exhausted; close releases any
// held resources (buffered charges, upstream iterators) and must be
// safe to call after an error or mid-stream abandonment.
type chunkIter interface {
	next() ([]solution, error)
	close()
}

// streaming reports whether this run evaluates through the chunked
// pipeline: enabled by Engine.chunkSize and disabled under tracing.
func (r *run) streaming() bool { return r.trace == nil && r.e.chunkSize > 0 }

// chunk is the configured chunk size, defensive against a zero value.
func (r *run) chunk() int {
	if n := r.e.chunkSize; n > 0 {
		return n
	}
	return defaultChunkSize
}

// kernel returns a run copy for per-chunk operator kernels: it shares
// the cancellation plumbing and var table but detaches accounting and
// tracing — the pipeline charges at chunk boundaries (boundIter)
// instead, so kernels must not double-charge. ctx is the enclosing
// graph context, which EXISTS filters read from the run (expr.go).
func (r *run) kernel(ctx graphCtx) *run {
	kr := *r
	kr.acct = nil
	kr.ownAcct = false
	kr.trace = nil
	kr.ctx = ctx
	return &kr
}

// boundIter enforces the chunk-boundary contract around one stage: on
// every pull it (1) checks cancellation, (2) releases the previous
// chunk's charge — the consumer is done with it, (3) pulls, (4) charges
// the new chunk, (5) checks the memory budget. The last chunk's charge
// is dropped at close (or by QueryAcct.Finish on abort), so in-flight
// gauges track pipeline occupancy: stages × chunk bytes.
type boundIter struct {
	r    *run
	src  chunkIter
	held int64
}

func (b *boundIter) next() ([]solution, error) {
	if b.r.cancelled() {
		return nil, b.r.cancelErr()
	}
	if b.held > 0 {
		b.r.acct.Release(b.held)
		b.held = 0
	}
	chunk, err := b.src.next()
	if err != nil || chunk == nil {
		return nil, err
	}
	if b.r.acct != nil && len(chunk) > 0 {
		b.held = int64(len(chunk)) * approxRowBytes(chunk[0])
		b.r.acct.Materialize(len(chunk), b.held)
		if b.r.overMem() {
			return nil, b.r.memErr()
		}
	}
	return chunk, nil
}

func (b *boundIter) close() {
	if b.held > 0 {
		b.r.acct.Release(b.held)
		b.held = 0
	}
	b.src.close()
}

func (r *run) bound(src chunkIter) chunkIter { return &boundIter{r: r, src: src} }

// sliceSource re-streams a materialized slice in chunks.
type sliceSource struct {
	rows  []solution
	chunk int
}

func (s *sliceSource) next() ([]solution, error) {
	if len(s.rows) == 0 {
		return nil, nil
	}
	n := s.chunk
	if n <= 0 || n > len(s.rows) {
		n = len(s.rows)
	}
	out := s.rows[:n]
	s.rows = s.rows[n:]
	return out, nil
}

func (s *sliceSource) close() { s.rows = nil }

// mapChunk applies a kernel to every chunk, skipping chunks the kernel
// empties (a FILTER dropping all rows must not end the stream).
type mapChunk struct {
	src chunkIter
	fn  func([]solution) ([]solution, error)
}

func (m *mapChunk) next() ([]solution, error) {
	for {
		chunk, err := m.src.next()
		if err != nil || chunk == nil {
			return nil, err
		}
		out, err := m.fn(chunk)
		if err != nil {
			return nil, err
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

func (m *mapChunk) close() { m.src.close() }

// emptyIter is the GRAPH <missing> stage: no output, but close still
// reaches upstream.
type emptyIter struct{ src chunkIter }

func (e *emptyIter) next() ([]solution, error) { return nil, nil }
func (e *emptyIter) close()                    { e.src.close() }

// drainStream materializes a stream — the pipeline-breaker entry. The
// accumulated rows are charged to the account (they are genuinely
// retained) with the same accountNew cost model the materialized
// evaluator uses.
func drainStream(r *run, src chunkIter) ([]solution, error) {
	defer src.close()
	var rows []solution
	mark := 0
	for {
		chunk, err := src.next()
		if err != nil {
			return nil, err
		}
		if chunk == nil {
			return rows, nil
		}
		rows = append(rows, chunk...)
		if mark = accountNew(r, rows, mark); r.overMem() {
			return nil, r.memErr()
		}
	}
}

// streamGroup builds the stage chain for one group graph pattern.
// Consecutive triple patterns fold into one bgpIter, mirroring
// evalGroup's BGP batching; every other element becomes one stage
// wrapped in a chunk boundary.
func (r *run) streamGroup(g GroupGraphPattern, src chunkIter, gctx graphCtx) chunkIter {
	kr := r.kernel(gctx)
	cur := src
	var bgp []TriplePattern
	flush := func() {
		if len(bgp) == 0 {
			return
		}
		pats := bgp
		bgp = nil
		cur = r.bound(newBGPIter(r, kr, pats, cur, gctx))
	}
	for _, el := range g.Elements {
		if tp, ok := el.(TriplePattern); ok {
			bgp = append(bgp, tp)
			continue
		}
		flush()
		switch e := el.(type) {
		case FilterElement:
			expr := e.Expr
			cur = r.bound(&mapChunk{src: cur, fn: func(chunk []solution) ([]solution, error) {
				return kr.filterRowsPar(expr, chunk), nil
			}})
		case BindElement:
			idx := r.vt.slot(e.Var)
			expr := e.Expr
			cur = r.bound(&mapChunk{src: cur, fn: func(chunk []solution) ([]solution, error) {
				out := make([]solution, 0, len(chunk))
				for _, row := range chunk {
					nrow := row.clone()
					if v, err := kr.evalExpr(expr, row); err == nil {
						nrow[idx] = v
					}
					out = append(out, nrow)
				}
				return out, nil
			}})
		case OptionalElement:
			if tp, ok := singleTriplePattern(e.Pattern); ok {
				cur = r.bound(&mapChunk{src: cur, fn: func(chunk []solution) ([]solution, error) {
					return kr.optionalSinglePar(tp, chunk, gctx), nil
				}})
			} else {
				pat := e.Pattern
				cur = r.bound(&mapChunk{src: cur, fn: func(chunk []solution) ([]solution, error) {
					return kr.optionalPar(pat, chunk, gctx)
				}})
			}
		case UnionElement:
			cur = r.bound(&unionIter{r: r, branches: e.Branches, src: cur, gctx: gctx})
		case MinusElement:
			// The right side evaluates once (materialized, on the real
			// run so its intermediates are charged), lazily on the first
			// chunk.
			pat := e.Pattern
			var right []solution
			ready := false
			cur = r.bound(&mapChunk{src: cur, fn: func(chunk []solution) ([]solution, error) {
				if !ready {
					var err error
					right, err = r.evalGroup(pat, []solution{make(solution, len(r.vt.names))}, gctx)
					if err != nil {
						return nil, err
					}
					ready = true
				}
				return kr.minusRowsPar(chunk, right), nil
			}})
		case GraphElement:
			if !e.Graph.IsVar {
				if gid, ok := r.e.store.GraphID(e.Graph.Term); ok {
					cur = r.streamGroup(e.Pattern, cur, graphCtx{gid: gid})
				} else {
					cur = &emptyIter{src: cur}
				}
			} else {
				cur = r.bound(&graphVarIter{r: r, el: e, src: cur})
			}
		case GroupElement:
			cur = r.streamGroup(e.Pattern, cur, gctx)
		case ValuesElement:
			v := e
			cur = r.bound(&mapChunk{src: cur, fn: func(chunk []solution) ([]solution, error) {
				return kr.joinValues(chunk, v), nil
			}})
		case SubSelectElement:
			sq := e.Query
			var sub *Results
			cur = r.bound(&mapChunk{src: cur, fn: func(chunk []solution) ([]solution, error) {
				if sub == nil {
					var err error
					sub, err = r.evalSubSelect(sq, nil)
					if err != nil {
						return nil, err
					}
				}
				return kr.joinResults(chunk, sub), nil
			}})
		}
	}
	flush()
	return cur
}

// unionIter buffers its input once and replays it through each branch's
// pipeline in branch order — the same branch-major concatenation
// unionPar produces. The input buffer is an extra materialization
// point; it holds the rows *entering* the UNION, not the branch
// expansions.
type unionIter struct {
	r        *run
	branches []GroupGraphPattern
	src      chunkIter
	gctx     graphCtx

	started bool
	input   []solution
	bi      int
	cur     chunkIter
}

func (u *unionIter) next() ([]solution, error) {
	if !u.started {
		rows, err := drainStream(u.r, u.src)
		if err != nil {
			return nil, err
		}
		u.input = rows
		u.started = true
	}
	for {
		if u.cur != nil {
			chunk, err := u.cur.next()
			if err != nil {
				return nil, err
			}
			if chunk != nil {
				return chunk, nil
			}
			u.cur.close()
			u.cur = nil
		}
		if u.bi >= len(u.branches) || len(u.input) == 0 {
			return nil, nil
		}
		b := u.branches[u.bi]
		u.bi++
		u.cur = u.r.streamGroup(b, &sliceSource{rows: u.input, chunk: u.r.chunk()}, u.gctx)
	}
}

func (u *unionIter) close() {
	if u.cur != nil {
		u.cur.close()
		u.cur = nil
	}
	if !u.started {
		u.src.close()
	}
	u.input = nil
}

// graphVarIter implements GRAPH ?g { ... }: input buffered once, then
// replayed per named graph in id order (the materialized iteration
// order), with the graph variable bound on cloned seed rows.
type graphVarIter struct {
	r   *run
	el  GraphElement
	src chunkIter

	started bool
	input   []solution
	gids    []store.ID
	gi      int
	idx     int
	cur     chunkIter
}

func (g *graphVarIter) next() ([]solution, error) {
	if !g.started {
		rows, err := drainStream(g.r, g.src)
		if err != nil {
			return nil, err
		}
		g.input = rows
		g.gids = g.r.e.store.NamedGraphIDs()
		g.idx = g.r.vt.slot(g.el.Graph.Var)
		g.started = true
	}
	for {
		if g.cur != nil {
			chunk, err := g.cur.next()
			if err != nil {
				return nil, err
			}
			if chunk != nil {
				return chunk, nil
			}
			g.cur.close()
			g.cur = nil
		}
		if g.gi >= len(g.gids) {
			return nil, nil
		}
		gid := g.gids[g.gi]
		g.gi++
		gterm := g.r.e.store.Dict().Term(gid)
		var seed []solution
		for _, row := range g.input {
			if !row[g.idx].IsZero() && row[g.idx] != gterm {
				continue
			}
			nrow := row.clone()
			nrow[g.idx] = gterm
			seed = append(seed, nrow)
		}
		if len(seed) == 0 {
			continue
		}
		g.cur = g.r.streamGroup(g.el.Pattern, &sliceSource{rows: seed, chunk: g.r.chunk()}, graphCtx{gid: gid})
	}
}

func (g *graphVarIter) close() {
	if g.cur != nil {
		g.cur.close()
		g.cur = nil
	}
	if !g.started {
		g.src.close()
	}
	g.input = nil
}

// orderBGP replays evalBGP's greedy join-order selection up front. The
// heuristic's inputs — the bound-variable set (seeded from the first
// input row, grown by markBound) and the store's pattern counts — never
// depend on join outputs, so the order computed here is exactly the
// order evalBGP would pick join by join.
func (r *run) orderBGP(patterns []TriplePattern, first solution, gctx graphCtx) []TriplePattern {
	if r.planned || r.e.DisableReorder || len(patterns) <= 1 {
		return patterns
	}
	remaining := make([]TriplePattern, len(patterns))
	copy(remaining, patterns)
	bound := make(map[string]bool)
	for name, idx := range r.vt.index {
		if !first[idx].IsZero() {
			bound[name] = true
		}
	}
	out := make([]TriplePattern, 0, len(patterns))
	for len(remaining) > 0 {
		next := 0
		if len(remaining) > 1 {
			candidates := make([]int, 0, len(remaining))
			for i, tp := range remaining {
				if patternConnected(tp, bound) {
					candidates = append(candidates, i)
				}
			}
			if len(candidates) == 0 {
				for i := range remaining {
					candidates = append(candidates, i)
				}
			}
			best := -1
			for _, i := range candidates {
				cost := r.estimateCost(remaining[i], bound, gctx)
				if best < 0 || cost < best {
					best = cost
					next = i
				}
			}
		}
		tp := remaining[next]
		remaining = append(remaining[:next], remaining[next+1:]...)
		out = append(out, tp)
		markBound(tp, bound)
	}
	return out
}

// bgpLevel is one join level of a bgpIter: its pattern, the rows
// waiting to be joined, the row scan in progress, and the account
// charge held for the buffered rows.
type bgpLevel struct {
	tp   TriplePattern
	buf  []solution
	scan *rowScan
	held int64
}

// bgpIter joins a basic graph pattern incrementally. Level 0 consumes
// input chunks; each advance joins a bounded batch of one level's rows
// with its pattern and hands the output to the next level. Scheduling
// is depth-first — always the deepest level with pending work — which
// bounds every buffer to about one chunk while producing rows in
// exactly the materialized join order (the per-row join is
// order-preserving, so depth-first and breadth-first emit the same
// sequence).
type bgpIter struct {
	r    *run // real run: accounting, cancellation, memory errors
	kr   *run // kernel run for batch joins (no accounting)
	src  chunkIter
	gctx graphCtx

	raw    []TriplePattern
	levels []bgpLevel
	inited bool
	srcEOF bool
}

func newBGPIter(r, kr *run, pats []TriplePattern, src chunkIter, gctx graphCtx) *bgpIter {
	return &bgpIter{r: r, kr: kr, src: src, gctx: gctx, raw: pats}
}

func (b *bgpIter) init(first solution) {
	pats := b.r.orderBGP(b.raw, first, b.gctx)
	b.levels = make([]bgpLevel, len(pats))
	for i, tp := range pats {
		b.levels[i].tp = tp
	}
	b.inited = true
}

func (b *bgpIter) next() ([]solution, error) {
	for {
		// Deepest level with pending work.
		i := -1
		for l := len(b.levels) - 1; l >= 0; l-- {
			if len(b.levels[l].buf) > 0 || b.levels[l].scan != nil {
				i = l
				break
			}
		}
		if i < 0 {
			if b.srcEOF {
				return nil, nil
			}
			chunk, err := b.src.next()
			if err != nil {
				return nil, err
			}
			if chunk == nil {
				b.srcEOF = true
				continue
			}
			if len(chunk) == 0 {
				continue
			}
			if !b.inited {
				b.init(chunk[0])
			}
			// The input chunk stays charged by the upstream boundary
			// until the next src pull, which only happens once the
			// levels drain — no extra charge needed for level 0.
			b.levels[0].buf = chunk
			continue
		}
		out, err := b.advance(i)
		if err != nil {
			return nil, err
		}
		if lvl := &b.levels[i]; len(lvl.buf) == 0 && lvl.scan == nil && lvl.held > 0 {
			b.r.acct.Release(lvl.held)
			lvl.held = 0
		}
		if len(out) == 0 {
			continue
		}
		if i == len(b.levels)-1 {
			return out, nil
		}
		nl := &b.levels[i+1]
		nl.buf = out
		if b.r.acct != nil {
			nl.held = int64(len(out)) * approxRowBytes(out[0])
			b.r.acct.Materialize(len(out), nl.held)
			if b.r.overMem() {
				return nil, b.r.memErr()
			}
		}
	}
}

// advance joins a bounded amount of level i's buffered rows with its
// pattern. Large batches take the parallel batch join (the PR 1 kernel,
// order-preserving merge included); small batches and resumed scans go
// row by row through a suspendable store cursor, so a single row whose
// pattern matches the whole store still emits chunk-sized output.
// Property patterns always batch (path closures have no cursor form).
// Level 0 rows are shared with the caller (owned=false: single-match
// rows are cloned); deeper rows are owned and extended in place —
// joinPatternOwned's exact ownership rule.
func (b *bgpIter) advance(i int) ([]solution, error) {
	lvl := &b.levels[i]
	owned := i > 0
	max := b.r.chunk()
	if lvl.scan == nil && (lvl.tp.Path != nil || len(lvl.buf) >= minParallelRows) {
		n := len(lvl.buf)
		if n > max {
			n = max
		}
		batch := lvl.buf[:n]
		lvl.buf = lvl.buf[n:]
		return b.kr.joinPatternPar(lvl.tp, batch, b.gctx, owned)
	}
	var out []solution
	for len(out) < max {
		if lvl.scan == nil {
			if len(lvl.buf) == 0 {
				break
			}
			row := lvl.buf[0]
			lvl.buf = lvl.buf[1:]
			lvl.scan = b.kr.newRowScan(lvl.tp, row, b.gctx, owned)
		}
		done, err := lvl.scan.emit(&out, max)
		if err != nil {
			return nil, err
		}
		if done {
			lvl.scan = nil
		}
	}
	return out, nil
}

func (b *bgpIter) close() {
	for l := range b.levels {
		if b.levels[l].held > 0 {
			b.r.acct.Release(b.levels[l].held)
			b.levels[l].held = 0
		}
	}
	b.src.close()
}

// rowScan joins one row with one pattern through a resumable snapshot
// cursor (store.Scan), replicating joinPatternOwned's semantics: the
// first match is deferred so a single-match row can be extended in
// place (when owned) instead of cloned, repeated-variable constraints
// are enforced by extend, and the scan checks cancellation with the
// same cadence as the materialized in-scan hook.
type rowScan struct {
	r     *run
	tp    TriplePattern
	row   solution
	owned bool
	sc    *store.Scan

	sBound, pBound, oBound bool

	matches int
	first   rdf.Triple
}

func (r *run) newRowScan(tp TriplePattern, row solution, gctx graphCtx, owned bool) *rowScan {
	gterm := rdf.Term{}
	if gctx.gid != store.NoID {
		gterm = r.e.store.Dict().Term(gctx.gid)
	}
	s, sBound := r.resolve(tp.S, row)
	p, pBound := r.resolve(tp.P, row)
	o, oBound := r.resolve(tp.O, row)
	var sPat, pPat, oPat rdf.Term
	if sBound {
		sPat = s
	}
	if pBound {
		pPat = p
	}
	if oBound {
		oPat = o
	}
	return &rowScan{
		r: r, tp: tp, row: row, owned: owned,
		sBound: sBound, pBound: pBound, oBound: oBound,
		sc: r.e.store.MatchScan(gterm, sPat, pPat, oPat),
	}
}

// extend writes the pattern's bindings for t into dst, reporting
// whether repeated-variable constraints hold.
func (rs *rowScan) extend(dst solution, t rdf.Triple) bool {
	r, tp := rs.r, rs.tp
	if tp.S.IsVar && !rs.sBound {
		idx := r.vt.index[tp.S.Var]
		if !dst[idx].IsZero() && dst[idx] != t.S {
			return false
		}
		dst[idx] = t.S
	}
	if tp.P.IsVar && !rs.pBound {
		idx := r.vt.index[tp.P.Var]
		if !dst[idx].IsZero() && dst[idx] != t.P {
			return false
		}
		dst[idx] = t.P
	}
	if tp.O.IsVar && !rs.oBound {
		idx := r.vt.index[tp.O.Var]
		if !dst[idx].IsZero() && dst[idx] != t.O {
			return false
		}
		dst[idx] = t.O
	}
	return true
}

// emit appends join results to out until the scan is exhausted
// (done=true) or out reaches max rows; a suspended scan resumes
// mid-match-list on the next call.
func (rs *rowScan) emit(out *[]solution, max int) (bool, error) {
	for len(*out) < max {
		t, ok := rs.sc.NextTriple()
		if !ok {
			if rs.matches == 1 {
				dst := rs.row
				if !rs.owned {
					dst = rs.row.clone()
				}
				if rs.extend(dst, rs.first) {
					*out = append(*out, dst)
				}
			}
			return true, nil
		}
		rs.matches++
		if rs.matches%(cancelCheckRows*4) == 0 && rs.r.cancelled() {
			return false, rs.r.cancelErr()
		}
		switch rs.matches {
		case 1:
			rs.first = t
		case 2:
			if nrow := rs.row.clone(); rs.extend(nrow, rs.first) {
				*out = append(*out, nrow)
			}
			fallthrough
		default:
			if nrow := rs.row.clone(); rs.extend(nrow, t) {
				*out = append(*out, nrow)
			}
		}
	}
	return false, nil
}

// projectStage applies the SELECT projection chunk by chunk — the same
// per-row logic as evalUngrouped's projection loop.
func (r *run) projectStage(q *Query, vars []string, src chunkIter) chunkIter {
	kr := r.kernel(graphCtx{})
	return r.bound(&mapChunk{src: src, fn: func(chunk []solution) ([]solution, error) {
		out := make([]solution, 0, len(chunk))
		for _, row := range chunk {
			orow := make(solution, len(vars))
			if q.Star {
				for i, n := range vars {
					orow[i] = row[r.vt.index[n]]
				}
			} else {
				for i, it := range q.Projection {
					if it.Expr == nil {
						if idx, ok := r.vt.index[it.Var]; ok {
							orow[i] = row[idx]
						}
						continue
					}
					if v, err := kr.evalExpr(it.Expr, row); err == nil {
						orow[i] = v
					}
				}
			}
			out = append(out, orow)
		}
		return out, nil
	}})
}

// distinctIter streams DISTINCT: rows pass through in order, dropped
// when their rendered key (distinctRows' exact key) was seen before.
// The seen set is the one retained structure — it grows with the number
// of distinct rows, which is also the size of the final result.
type distinctIter struct {
	src  chunkIter
	seen map[string]struct{}
}

func (d *distinctIter) next() ([]solution, error) {
	for {
		chunk, err := d.src.next()
		if err != nil || chunk == nil {
			return nil, err
		}
		out := chunk[:0:len(chunk)]
		for _, row := range chunk {
			var b strings.Builder
			for _, t := range row {
				b.WriteString(t.String())
				b.WriteByte('\x00')
			}
			k := b.String()
			if _, ok := d.seen[k]; ok {
				continue
			}
			d.seen[k] = struct{}{}
			out = append(out, row)
		}
		if len(out) > 0 {
			return out, nil
		}
	}
}

func (d *distinctIter) close() { d.src.close() }

// sliceIter applies OFFSET/LIMIT. Once the limit is delivered it stops
// pulling entirely — upstream work past the limit never runs.
type sliceIter struct {
	src    chunkIter
	offset int
	limit  int // -1 = unlimited
	done   bool
}

func (s *sliceIter) next() ([]solution, error) {
	if s.done {
		return nil, nil
	}
	for {
		chunk, err := s.src.next()
		if err != nil || chunk == nil {
			s.done = true
			return nil, err
		}
		if s.offset > 0 {
			if s.offset >= len(chunk) {
				s.offset -= len(chunk)
				continue
			}
			chunk = chunk[s.offset:]
			s.offset = 0
		}
		if s.limit >= 0 {
			if len(chunk) > s.limit {
				chunk = chunk[:s.limit]
			}
			s.limit -= len(chunk)
			if s.limit == 0 {
				s.done = true
			}
		}
		if len(chunk) > 0 {
			return chunk, nil
		}
		if s.done {
			return nil, nil
		}
	}
}

func (s *sliceIter) close() { s.src.close() }

// selectStream assembles the full pipeline for a SELECT query. Queries
// that end in a pipeline breaker (GROUP BY / aggregates / ORDER BY)
// stream the WHERE clause, materialize at the breaker, and return a
// finished result table; everything else returns a live chunk iterator
// of projected rows plus the header.
func (r *run) selectStream(q *Query) (*Results, chunkIter, []string, error) {
	seed := []solution{make(solution, len(r.vt.names))}
	body := r.streamGroup(q.Where, &sliceSource{rows: seed, chunk: r.chunk()}, graphCtx{})

	grouped := len(q.GroupBy) > 0 || projectionHasAggregates(q)
	if grouped || len(q.OrderBy) > 0 {
		rows, err := drainStream(r, body)
		if err != nil {
			return nil, nil, nil, err
		}
		res, err := r.finishSelect(q, rows)
		return res, nil, nil, err
	}

	vars := r.selectVars(q)
	it := r.projectStage(q, vars, body)
	if q.Distinct {
		it = r.bound(&distinctIter{src: it, seen: make(map[string]struct{})})
	}
	if q.Offset > 0 || q.Limit >= 0 {
		it = &sliceIter{src: it, offset: q.Offset, limit: q.Limit}
	}
	return nil, it, vars, nil
}

// streamSelect is the collector driving selectStream for callers that
// want a whole Results value: peak in-flight memory is bounded by the
// pipeline plus the final table, not by intermediate joins.
func (r *run) streamSelect(q *Query) (*Results, error) {
	res, it, vars, err := r.selectStream(q)
	if err != nil {
		return nil, err
	}
	if res != nil {
		return res, nil
	}
	defer it.close()
	out := &Results{Vars: vars}
	mark := 0
	for {
		chunk, err := it.next()
		if err != nil {
			return nil, err
		}
		if chunk == nil {
			return out, nil
		}
		for _, row := range chunk {
			out.Rows = append(out.Rows, row)
		}
		// The collected table is retained: charge it (the boundary
		// charge is released as the pipeline advances).
		if mark = accountNew(r, out.Rows, mark); r.overMem() {
			return nil, r.memErr()
		}
	}
}

// streamAsk short-circuits ASK on the first surviving chunk.
func (r *run) streamAsk(q *Query) (bool, error) {
	seed := []solution{make(solution, len(r.vt.names))}
	it := r.streamGroup(q.Where, &sliceSource{rows: seed, chunk: r.chunk()}, graphCtx{})
	defer it.close()
	for {
		chunk, err := it.next()
		if err != nil {
			return false, err
		}
		if chunk == nil {
			return false, nil
		}
		if len(chunk) > 0 {
			return true, nil
		}
	}
}

// StreamSelect evaluates a SELECT query and delivers results
// incrementally: head is called once with the projection header, then
// chunk is called for every block of rows as the pipeline produces it.
// An error from either callback aborts evaluation and is returned
// as-is. Queries ending in a pipeline breaker deliver their (already
// materialized) result in chunk-size blocks, so consumers can flush
// uniformly. When streaming is disabled (chunk size 0) or the engine
// decides to trace, the query evaluates materialized and is delivered
// the same way.
func (e *Engine) StreamSelect(ctx context.Context, q *Query, head func(vars []string) error, chunk func(rows [][]rdf.Term) error) error {
	if q.Form != FormSelect {
		return fmt.Errorf("sparql: not a SELECT query")
	}
	q = e.prepared(q)
	r := &run{e: e, vt: newVarTable(), planned: q.Planned}
	r.bindContext(ctx)
	r.bindAcct(ctx, false)
	defer r.closeAcct()
	collectVars(q, r.vt)

	emitTable := func(res *Results) error {
		if err := head(res.Vars); err != nil {
			return err
		}
		n := e.chunkSize
		if n <= 0 {
			n = defaultChunkSize
		}
		for lo := 0; lo < len(res.Rows); lo += n {
			// Delivery honors cancellation even though evaluation is
			// done: a gone consumer must not be streamed to.
			if r.cancelled() {
				return r.cancelErr()
			}
			hi := lo + n
			if hi > len(res.Rows) {
				hi = len(res.Rows)
			}
			if err := chunk(res.Rows[lo:hi]); err != nil {
				return err
			}
		}
		return nil
	}

	if !r.streaming() {
		res, err := r.evalSelect(q)
		if err != nil {
			return err
		}
		return emitTable(res)
	}
	res, it, vars, err := r.selectStream(q)
	if err != nil {
		return err
	}
	if res != nil {
		return emitTable(res)
	}
	defer it.close()
	if err := head(vars); err != nil {
		return err
	}
	for {
		c, err := it.next()
		if err != nil {
			return err
		}
		if c == nil {
			return nil
		}
		rows := make([][]rdf.Term, len(c))
		for i, s := range c {
			rows[i] = s
		}
		if err := chunk(rows); err != nil {
			return err
		}
	}
}
