package sparql

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// streamTestStore is peopleTTL plus a named graph, so the operator
// equivalence battery can exercise GRAPH (fixed and variable) and
// EXISTS filters evaluated inside a graph context.
func streamTestStore(t *testing.T) *store.Store {
	t.Helper()
	st := loadStore(t, peopleTTL)
	g1 := rdf.NewIRI("http://example.org/g1")
	g2 := rdf.NewIRI("http://example.org/g2")
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }
	st.Insert(rdf.NewQuad(ex("alice"), ex("works"), ex("acme"), g1))
	st.Insert(rdf.NewQuad(ex("bob"), ex("works"), ex("initech"), g1))
	st.Insert(rdf.NewQuad(ex("acme"), ex("sector"), rdf.NewLiteral("tech"), g1))
	st.Insert(rdf.NewQuad(ex("carol"), ex("works"), ex("acme"), g2))
	return st
}

// streamEquivQueries covers every streaming operator: BGP joins,
// FILTER, BIND, OPTIONAL (single and group), UNION, MINUS, VALUES,
// GRAPH fixed/variable/missing, subselects, property paths, DISTINCT,
// OFFSET/LIMIT, and the pipeline breakers (ORDER BY, aggregation) that
// must fall back to the materialized tail.
var streamEquivQueries = []string{
	`PREFIX ex: <http://example.org/>
SELECT ?name WHERE { ?p a ex:Person ; ex:name ?name }`,
	`PREFIX ex: <http://example.org/>
SELECT * WHERE { ?p ex:knows ?q . ?q ex:name ?name }`,
	`PREFIX ex: <http://example.org/>
SELECT ?name ?a WHERE { ?p ex:name ?name ; ex:age ?a FILTER(?a > 26) }`,
	`PREFIX ex: <http://example.org/>
SELECT ?name ?twice WHERE { ?p ex:name ?name ; ex:age ?a BIND(?a * 2 AS ?twice) }`,
	`PREFIX ex: <http://example.org/>
SELECT ?name ?other WHERE { ?p a ex:Person ; ex:name ?name OPTIONAL { ?p ex:knows ?o . ?o ex:name ?other } }`,
	`PREFIX ex: <http://example.org/>
SELECT ?name ?city WHERE { ?p ex:name ?name OPTIONAL { ?p ex:city ?city } }`,
	`PREFIX ex: <http://example.org/>
SELECT ?name WHERE { { ?p a ex:Person ; ex:name ?name } UNION { ?p a ex:Robot ; ex:name ?name } }`,
	`PREFIX ex: <http://example.org/>
SELECT ?name WHERE { ?p ex:name ?name MINUS { ?p ex:age ?a FILTER(?a < 31) } }`,
	`PREFIX ex: <http://example.org/>
SELECT ?p ?name WHERE { ?p ex:name ?name VALUES ?p { ex:alice ex:dave } }`,
	`PREFIX ex: <http://example.org/>
SELECT ?who ?org WHERE { GRAPH ex:g1 { ?who ex:works ?org } }`,
	`PREFIX ex: <http://example.org/>
SELECT ?g ?who WHERE { GRAPH ?g { ?who ex:works ?org } }`,
	`PREFIX ex: <http://example.org/>
SELECT ?who WHERE { GRAPH ex:nosuch { ?who ex:works ?org } }`,
	`PREFIX ex: <http://example.org/>
SELECT ?who ?org WHERE { GRAPH ex:g1 { ?who ex:works ?org FILTER EXISTS { ?org ex:sector ?s } } }`,
	`PREFIX ex: <http://example.org/>
SELECT ?name ?max WHERE { ?p ex:name ?name { SELECT (MAX(?a) AS ?max) WHERE { ?x ex:age ?a } } }`,
	`PREFIX ex: <http://example.org/>
SELECT ?name WHERE { ?p ex:city/ex:inCountry/ex:label ?c ; ex:name ?name }`,
	`PREFIX ex: <http://example.org/>
SELECT DISTINCT ?country WHERE { ?p ex:city ?c . ?c ex:inCountry ?country }`,
	`PREFIX ex: <http://example.org/>
SELECT ?name WHERE { ?p a ex:Person ; ex:name ?name } OFFSET 1 LIMIT 1`,
	`PREFIX ex: <http://example.org/>
SELECT ?name WHERE { ?p ex:name ?name } ORDER BY DESC(?name) LIMIT 2`,
	`PREFIX ex: <http://example.org/>
SELECT ?city (COUNT(?p) AS ?n) WHERE { ?p ex:city ?city } GROUP BY ?city ORDER BY ?city`,
	`PREFIX ex: <http://example.org/>
SELECT ?s ?o WHERE { ?s ex:p ?o }`,
}

// TestStreamingEquivalenceOperators is the package-level half of the
// streaming acceptance gate: for every operator the pipeline
// implements, the streamed result must be byte-identical (as JSON) to
// the materialized evaluator's, at chunk sizes that force both the
// per-row cursor path (1) and mid-chunk boundaries (3).
func TestStreamingEquivalenceOperators(t *testing.T) {
	st := streamTestStore(t)
	base := NewEngine(st, WithChunkSize(0))
	for _, cs := range []int{1, 3, 1024} {
		eng := NewEngine(st, WithChunkSize(cs))
		for i, qs := range streamEquivQueries {
			t.Run(fmt.Sprintf("chunk=%d/q%02d", cs, i), func(t *testing.T) {
				want, err := base.QueryString(qs)
				if err != nil {
					t.Fatalf("materialized: %v\n%s", err, qs)
				}
				got, err := eng.QueryString(qs)
				if err != nil {
					t.Fatalf("streaming: %v\n%s", err, qs)
				}
				wj, _ := json.Marshal(want)
				gj, _ := json.Marshal(got)
				if !bytes.Equal(wj, gj) {
					t.Errorf("streamed result differs from materialized\nwant %s\ngot  %s", wj, gj)
				}
			})
		}
	}
}

// TestStreamAskParity checks ASK short-circuits through the pipeline
// with the same verdicts as the materialized path.
func TestStreamAskParity(t *testing.T) {
	st := streamTestStore(t)
	for _, qs := range []string{
		`PREFIX ex: <http://example.org/> ASK { ?p ex:age ?a FILTER(?a > 34) }`,
		`PREFIX ex: <http://example.org/> ASK { ?p ex:age ?a FILTER(?a > 99) }`,
		`PREFIX ex: <http://example.org/> ASK { GRAPH ex:g1 { ?s ex:works ?o } }`,
	} {
		q, err := ParseQuery(qs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := NewEngine(st, WithChunkSize(0)).Ask(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewEngine(st, WithChunkSize(1)).Ask(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("ASK parity: streaming=%v materialized=%v\n%s", got, want, qs)
		}
	}
}

// TestStreamSelectDelivery checks the incremental delivery contract:
// head exactly once, every chunk within the configured size, and the
// concatenation equal to the materialized result.
func TestStreamSelectDelivery(t *testing.T) {
	st := streamTestStore(t)
	qs := `PREFIX ex: <http://example.org/>
SELECT ?name WHERE { ?p ex:name ?name }`
	q, err := ParseQuery(qs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewEngine(st, WithChunkSize(0)).Select(q)
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(st, WithChunkSize(2))
	var vars []string
	heads := 0
	var rows [][]rdf.Term
	err = eng.StreamSelect(context.Background(), q,
		func(v []string) error { heads++; vars = append([]string(nil), v...); return nil },
		func(c [][]rdf.Term) error {
			if len(c) == 0 || len(c) > 2 {
				t.Errorf("chunk of %d rows with chunk size 2", len(c))
			}
			rows = append(rows, c...)
			return nil
		})
	if err != nil {
		t.Fatalf("StreamSelect: %v", err)
	}
	if heads != 1 {
		t.Fatalf("head called %d times, want 1", heads)
	}
	got := &Results{Vars: vars, Rows: rows}
	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(got)
	if !bytes.Equal(wj, gj) {
		t.Fatalf("streamed delivery differs\nwant %s\ngot  %s", wj, gj)
	}
}

// TestStreamSelectBreakerDelivery checks that a pipeline-breaker query
// (ORDER BY) still arrives via the chunk callback in bounded blocks.
func TestStreamSelectBreakerDelivery(t *testing.T) {
	st := streamTestStore(t)
	q, err := ParseQuery(`PREFIX ex: <http://example.org/>
SELECT ?name WHERE { ?p ex:name ?name } ORDER BY ?name`)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(st, WithChunkSize(2))
	var names []string
	err = eng.StreamSelect(context.Background(), q,
		func([]string) error { return nil },
		func(c [][]rdf.Term) error {
			if len(c) > 2 {
				t.Errorf("breaker chunk of %d rows with chunk size 2", len(c))
			}
			for _, row := range c {
				names = append(names, row[0].Value)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 4 || names[0] != "Alice" || names[3] != "Dave" {
		t.Fatalf("ordered names = %v", names)
	}
}

// TestStreamSelectSinkError checks a failing consumer aborts the
// pipeline and the error comes back as-is.
func TestStreamSelectSinkError(t *testing.T) {
	st := streamTestStore(t)
	q, err := ParseQuery(`PREFIX ex: <http://example.org/>
SELECT ?name WHERE { ?p ex:name ?name }`)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("sink full")
	calls := 0
	err = NewEngine(st, WithChunkSize(1)).StreamSelect(context.Background(), q,
		func([]string) error { return nil },
		func([][]rdf.Term) error { calls++; return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the sink's own error", err)
	}
	if calls != 1 {
		t.Fatalf("chunk delivered %d times after sink error, want 1", calls)
	}
}

// TestStreamSelectCancelMidStream cancels between chunks and expects
// the cooperative cancellation contract at the next chunk boundary.
func TestStreamSelectCancelMidStream(t *testing.T) {
	st := streamTestStore(t)
	q, err := ParseQuery(`PREFIX ex: <http://example.org/>
SELECT ?name WHERE { ?p ex:name ?name }`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err = NewEngine(st, WithChunkSize(1)).StreamSelect(ctx, q,
		func([]string) error { return nil },
		func([][]rdf.Term) error { cancel(); return nil })
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CanceledError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v does not unwrap to context.Canceled", err)
	}
}

// TestStreamMemLimit checks the chunk-boundary accounting still
// enforces -max-query-mem on the streaming path.
func TestStreamMemLimit(t *testing.T) {
	st := streamTestStore(t)
	eng := NewEngine(st, WithChunkSize(1), WithMaxQueryMem(64))
	_, err := eng.QueryString(`PREFIX ex: <http://example.org/>
SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	var me *MemLimitError
	if !errors.As(err, &me) {
		t.Fatalf("err = %v, want *MemLimitError", err)
	}
}

// TestChunkSizeOption pins the option semantics: negative clamps to
// materialized, zero disables, the default engine streams.
func TestChunkSizeOption(t *testing.T) {
	st := streamTestStore(t)
	if got := NewEngine(st).ChunkSize(); got != defaultChunkSize {
		t.Errorf("default chunk size = %d, want %d", got, defaultChunkSize)
	}
	if got := NewEngine(st, WithChunkSize(0)).ChunkSize(); got != 0 {
		t.Errorf("WithChunkSize(0) = %d, want 0", got)
	}
	if got := NewEngine(st, WithChunkSize(-5)).ChunkSize(); got != 0 {
		t.Errorf("WithChunkSize(-5) = %d, want 0", got)
	}
	e := NewEngine(st)
	e.SetChunkSize(7)
	if got := e.ChunkSize(); got != 7 {
		t.Errorf("SetChunkSize(7) = %d", got)
	}
}

// TestResultsEncoderByteIdentity checks the incremental encoder writes
// exactly the bytes Results.MarshalJSON would, for every chunking of
// the rows, including the boundary shapes (no rows, nil vars, unbound
// cells).
func TestResultsEncoderByteIdentity(t *testing.T) {
	iri := rdf.NewIRI("http://x/a")
	lit := rdf.NewLiteral("hi")
	cases := []*Results{
		{Vars: []string{"s", "o"}, Rows: [][]rdf.Term{
			{iri, lit},
			{iri, {}}, // unbound cell must be omitted
			{{}, lit},
		}},
		{Vars: []string{"s"}, Rows: [][]rdf.Term{}},
		{Vars: nil, Rows: nil},
		{Vars: []string{"l"}, Rows: [][]rdf.Term{{rdf.NewLangLiteral("bonjour", "fr")}}},
	}
	for i, res := range cases {
		want, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		for _, chunkRows := range []int{1, 2, 1 << 20} {
			var buf bytes.Buffer
			enc := NewResultsEncoder(&buf)
			if err := enc.Head(res.Vars); err != nil {
				t.Fatal(err)
			}
			for lo := 0; lo < len(res.Rows); lo += chunkRows {
				hi := lo + chunkRows
				if hi > len(res.Rows) {
					hi = len(res.Rows)
				}
				if err := enc.Rows(res.Rows[lo:hi]); err != nil {
					t.Fatal(err)
				}
			}
			if err := enc.Close(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("case %d chunk %d: encoder bytes differ\nwant %s\ngot  %s",
					i, chunkRows, want, buf.Bytes())
			}
		}
	}
}

// TestDecodeResultsRoundTrip checks the incremental decoder on the
// encoder's own output and on every truncated prefix, which must fail
// with a typed, Truncated-classified error — never a panic or a silent
// partial result.
func TestDecodeResultsRoundTrip(t *testing.T) {
	res := &Results{Vars: []string{"s", "n"}, Rows: [][]rdf.Term{
		{rdf.NewIRI("http://x/a"), rdf.NewInteger(1)},
		{rdf.NewIRI("http://x/b"), {}},
	}}
	doc, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResults(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("decoding a well-formed document: %v", err)
	}
	gj, _ := json.Marshal(got)
	if !bytes.Equal(gj, doc) {
		t.Fatalf("round trip drifted\nwant %s\ngot  %s", doc, gj)
	}

	for n := 0; n < len(doc); n++ {
		_, err := DecodeResults(bytes.NewReader(doc[:n]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(doc))
		}
		var de *ResultsDecodeError
		if !errors.As(err, &de) {
			t.Fatalf("prefix %d: error %T is not *ResultsDecodeError: %v", n, err, err)
		}
		if !de.Truncated {
			t.Errorf("prefix %d: truncation not classified as Truncated: %v", n, err)
		}
	}

	for _, garbage := range []string{"xyz", `{"head":1}tail`, `[1,2,3]`} {
		_, err := DecodeResults(bytes.NewReader([]byte(garbage)))
		var de *ResultsDecodeError
		if !errors.As(err, &de) {
			t.Fatalf("garbage %q: error %T is not *ResultsDecodeError: %v", garbage, err, err)
		}
		if de.Truncated {
			t.Errorf("garbage %q misclassified as truncation", garbage)
		}
	}
}
