package sparql

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// This file is the engine's tracing glue: the WithTracer option, the
// QueryTraced entry points, and the span helpers the evaluator calls.
//
// Tracing contract: spans are created and finished only on the query's
// coordinating goroutine (the one walking the algebra in evalGroup /
// evalSelect). Operators that fan row batches out to workers record one
// span at the coordinator with the worker count actually used; the
// interior of per-row OPTIONAL and per-branch UNION evaluation runs
// with the cursor cleared, both to keep span volume bounded and because
// those interiors execute on worker goroutines. When tracing is
// disabled the cursor is nil and every hook is a single nil check
// (obs.Span methods are nil-safe), which BenchmarkTracerOverhead pins
// to be within noise of the untraced engine.

// WithTracer installs an engine-level trace sink: every sampled Query
// records a per-operator trace and collects it into t (with no sampler
// installed, every query is sampled). Use NewTracer's ring to inspect
// recent query plans on a live server, or leave the engine tracer nil
// (the default) for zero-cost evaluation and trace individual queries
// with QueryTraced.
func WithTracer(t *obs.Tracer) Option {
	return func(e *Engine) { e.tracer = t }
}

// WithSampler installs the sampling policy applied when the engine has
// a tracer: each Query draws a fresh trace ID and is traced only when
// the sampler says so, keeping always-on tracing affordable under load
// (an unsampled query allocates no span tree — its only tracing cost is
// the ID draw and one hash). Nil — the default — samples everything.
// QueryTraced bypasses the sampler; it is the "force this one" path.
func WithSampler(s *obs.Sampler) Option {
	return func(e *Engine) { e.sampler = s }
}

// Tracer returns the engine-level tracer, or nil.
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// Sampler returns the engine-level sampler, or nil.
func (e *Engine) Sampler() *obs.Sampler { return e.sampler }

// QueryTraced evaluates a SELECT or ASK query with operator tracing
// enabled and returns the EXPLAIN ANALYZE-style trace alongside the
// results, under a fresh trace ID. The trace is returned even when
// evaluation fails (with the spans finished so far). If the engine has
// a tracer installed the trace is also collected there.
func (e *Engine) QueryTraced(q *Query) (*Results, *obs.Trace, error) {
	return e.queryTracedID(context.Background(), q, obs.NewTraceID())
}

// QueryTracedID is QueryTraced under a caller-chosen trace identity and
// context (the server uses the propagated ID of the traceparent header
// and the request context). The trace collected so far is returned even
// when evaluation fails or is cancelled, which is how the server
// reports a partial trace on a query deadline.
func (e *Engine) QueryTracedID(ctx context.Context, q *Query, id obs.TraceID) (*Results, *obs.Trace, error) {
	return e.queryTracedID(ctx, q, id)
}

// queryTracedID is QueryTraced under a caller-chosen trace identity
// (the server uses the propagated ID of the traceparent header).
func (e *Engine) queryTracedID(ctx context.Context, q *Query, id obs.TraceID) (*Results, *obs.Trace, error) {
	start := time.Now()
	// A traced query always runs with a resource account so the trace
	// carries rows/bytes/peak; a context-injected account (the server's
	// per-request one) is adopted, otherwise one is opened here.
	acct := QueryAcctFrom(ctx)
	if acct == nil {
		acct = obs.NewQueryAcct(e.resources, e.maxQueryMem)
		if ctx == nil {
			ctx = context.Background()
		}
		ctx = WithQueryAcct(ctx, acct)
		defer acct.Finish()
	}
	root := obs.StartSpan(q.Form.String(), "", 1)
	res, err := e.query(ctx, q, root)
	out := 0
	if res != nil {
		out = len(res.Rows)
	}
	root.Finish(out, 1)
	tr := &obs.Trace{ID: id, Start: start, Root: root,
		Rows: acct.Rows(), Bytes: acct.Bytes(), PeakBytes: acct.Peak()}
	e.tracer.Collect(tr)
	return res, tr, err
}

// QueryTracedString parses and evaluates a query string with tracing;
// the query text is recorded on the trace.
func (e *Engine) QueryTracedString(src string) (*Results, *obs.Trace, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, nil, err
	}
	res, tr, err := e.QueryTraced(q)
	if tr != nil {
		tr.Query = src
	}
	return res, tr, err
}

// String names the query form for trace roots.
func (f QueryForm) String() string {
	switch f {
	case FormSelect:
		return "SELECT"
	case FormAsk:
		return "ASK"
	case FormConstruct:
		return "CONSTRUCT"
	case FormDescribe:
		return "DESCRIBE"
	default:
		return "QUERY"
	}
}

// finishRows closes an operator span for a row-partitioned operator,
// recording the worker count the engine used for in input rows.
func (r *run) finishRows(sp *obs.Span, out, in int) {
	if sp != nil {
		sp.Finish(out, r.workersFor(in))
	}
}

// suspendTrace clears the trace cursor (used around operator interiors
// that run per-row or on worker goroutines) and returns the restore
// value.
func (r *run) suspendTrace() *obs.Span {
	saved := r.trace
	r.trace = nil
	return saved
}

// patternDetail renders a triple pattern compactly for span details,
// shortening IRIs to their local names.
func patternDetail(tp TriplePattern) string {
	p := patternTermDetail(tp.P)
	if tp.Path != nil {
		p = pathDetail(tp.Path)
	}
	return patternTermDetail(tp.S) + " " + p + " " + patternTermDetail(tp.O)
}

func patternTermDetail(pt PatternTerm) string {
	if pt.IsVar {
		return "?" + pt.Var
	}
	return shortTerm(pt.Term)
}

// shortTerm abbreviates a term for display: IRIs keep the fragment or
// last path segment, literals are quoted, blanks keep their label.
func shortTerm(t rdf.Term) string {
	switch t.Kind {
	case rdf.KindIRI:
		v := t.Value
		if i := strings.LastIndexAny(v, "#/"); i >= 0 && i < len(v)-1 {
			v = v[i+1:]
		}
		return v
	case rdf.KindLiteral:
		return fmt.Sprintf("%q", t.Value)
	case rdf.KindBlank:
		return "_:" + t.Value
	default:
		return t.String()
	}
}

func pathDetail(p *PropertyPath) string {
	if p == nil {
		return ""
	}
	switch p.Kind {
	case PathIRI:
		return shortTerm(p.IRI)
	case PathInverse:
		return "^" + pathDetail(sub(p, 0))
	case PathSequence:
		return pathDetail(sub(p, 0)) + "/" + pathDetail(sub(p, 1))
	case PathAlternative:
		return pathDetail(sub(p, 0)) + "|" + pathDetail(sub(p, 1))
	case PathZeroOrMore:
		return pathDetail(sub(p, 0)) + "*"
	case PathOneOrMore:
		return pathDetail(sub(p, 0)) + "+"
	default:
		return "path"
	}
}

func sub(p *PropertyPath, i int) *PropertyPath {
	if i < len(p.Sub) {
		return p.Sub[i]
	}
	return nil
}
