package sparql

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

// traceOps flattens a span tree into "depth:op" strings for shape
// assertions that ignore details and counts.
func traceOps(s *obs.Span) []string {
	var out []string
	var walk func(sp *obs.Span, depth int)
	walk = func(sp *obs.Span, depth int) {
		out = append(out, strings.Repeat(">", depth)+sp.Op)
		for _, c := range sp.Children {
			walk(c, depth+1)
		}
	}
	walk(s, 0)
	return out
}

func TestQueryTracedTreeShape(t *testing.T) {
	st := loadStore(t, peopleTTL)
	e := NewEngine(st, WithParallelism(1))
	res, tr, err := e.QueryTracedString(`
PREFIX ex: <http://example.org/>
SELECT ?name ?label WHERE {
  ?p a ex:Person ; ex:name ?name ; ex:city ?c .
  OPTIONAL { ?c ex:label ?label }
  FILTER (?name != "Bob")
} ORDER BY ?name LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	// The cost-based planner pushes the FILTER to the point where ?name
	// is first bound, splitting the written 3-pattern BGP and running
	// the filter before the remaining join and the OPTIONAL.
	want := []string{
		"SELECT",
		">BGP",
		">>JOIN", ">>JOIN",
		">FILTER",
		">BGP",
		">>JOIN",
		">OPTIONAL",
		">ORDER",
		">PROJECT",
		">SLICE",
	}
	if got := traceOps(tr.Root); !reflect.DeepEqual(got, want) {
		t.Errorf("trace shape mismatch:\ngot  %v\nwant %v\n\n%s", got, want, tr.Render())
	}
	if tr.Root.Out != 2 {
		t.Errorf("root out = %d, want 2", tr.Root.Out)
	}
	// The BGP's join chain must expose intermediate cardinalities: the
	// first join (a Person) yields 3, and every span has in/out set.
	bgp := tr.Root.Children[0]
	if bgp.Children[0].Out != 3 {
		t.Errorf("first join out = %d, want 3 persons\n%s", bgp.Children[0].Out, tr.Render())
	}
	if !strings.Contains(tr.Outline(), "JOIN ?p type Person") {
		t.Errorf("outline missing shortened pattern detail:\n%s", tr.Outline())
	}
}

func TestQueryTracedMatchesUntraced(t *testing.T) {
	st := loadStore(t, peopleTTL)
	e := NewEngine(st)
	queries := []string{
		`PREFIX ex: <http://example.org/> SELECT ?n WHERE { ?p ex:name ?n } ORDER BY ?n`,
		`PREFIX ex: <http://example.org/> SELECT ?c (COUNT(?p) AS ?n) WHERE { ?p ex:city ?c } GROUP BY ?c ORDER BY ?c`,
		`PREFIX ex: <http://example.org/> SELECT DISTINCT ?t WHERE { { ?p a ex:Person . ?p a ?t } UNION { ?p a ex:Robot . ?p a ?t } }`,
		`PREFIX ex: <http://example.org/> ASK { ex:alice ex:knows ex:bob }`,
	}
	for _, q := range queries {
		plain, err := e.QueryString(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		traced, tr, err := e.QueryTracedString(q)
		if err != nil {
			t.Fatalf("%s: traced: %v", q, err)
		}
		if !reflect.DeepEqual(plain, traced) {
			t.Errorf("%s: traced results differ from untraced", q)
		}
		if tr == nil || len(tr.Root.Children) == 0 {
			t.Errorf("%s: empty trace", q)
		}
	}
}

func TestEngineTracerCollects(t *testing.T) {
	st := loadStore(t, peopleTTL)
	sink := obs.NewTracer(8)
	e := NewEngine(st, WithTracer(sink))
	if _, err := e.QueryString(`PREFIX ex: <http://example.org/> SELECT ?n WHERE { ?p ex:name ?n }`); err != nil {
		t.Fatal(err)
	}
	recent := sink.Recent()
	if len(recent) != 1 {
		t.Fatalf("tracer collected %d traces, want 1", len(recent))
	}
	if recent[0].Root.Op != "SELECT" || recent[0].Root.Out != 4 {
		t.Errorf("unexpected root span %s out=%d", recent[0].Root.Op, recent[0].Root.Out)
	}
}

func TestTracedSubSelectAndMinus(t *testing.T) {
	st := loadStore(t, peopleTTL)
	e := NewEngine(st, WithParallelism(1))
	_, tr, err := e.QueryTracedString(`
PREFIX ex: <http://example.org/>
SELECT ?p WHERE {
  { SELECT ?p WHERE { ?p a ex:Person } }
  MINUS { ?p ex:city ex:lyon }
}`)
	if err != nil {
		t.Fatal(err)
	}
	outline := tr.Outline()
	for _, op := range []string{"SUBSELECT", "MINUS"} {
		if !strings.Contains(outline, op) {
			t.Errorf("outline missing %s:\n%s", op, outline)
		}
	}
}

// TestEngineSampledTracing: with a tracer plus a sampler, only sampled
// queries reach the tracer — rate 0 collects nothing (the untraced fast
// path), rate 1 collects everything, and QueryTraced forces a trace
// regardless of the sampler. Results are identical either way.
func TestEngineSampledTracing(t *testing.T) {
	st := loadStore(t, peopleTTL)
	const query = `PREFIX ex: <http://example.org/> SELECT ?p WHERE { ?p a ex:Person }`

	for _, tc := range []struct {
		rate float64
		want int
	}{{0, 0}, {1, 5}} {
		tracer := obs.NewTracer(16)
		e := NewEngine(st, WithTracer(tracer), WithSampler(obs.NewSampler(tc.rate)))
		var base *Results
		for i := 0; i < 5; i++ {
			res, err := e.QueryString(query)
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = res
			} else if !reflect.DeepEqual(base, res) {
				t.Fatalf("rate %g: results drifted across sampled/unsampled runs", tc.rate)
			}
		}
		if got := len(tracer.Recent()); got != tc.want {
			t.Errorf("rate %g: tracer collected %d traces, want %d", tc.rate, got, tc.want)
		}
		// Sampler verdicts never apply to the forced path.
		_, tr, err := e.QueryTracedString(query)
		if err != nil {
			t.Fatal(err)
		}
		if tr == nil || tr.ID == "" {
			t.Fatalf("rate %g: forced trace missing identity: %+v", tc.rate, tr)
		}
		if got := len(tracer.Recent()); got != tc.want+1 {
			t.Errorf("rate %g: forced trace not collected (have %d)", tc.rate, got)
		}
	}

	// Sampled traces carry distinct fresh IDs.
	tracer := obs.NewTracer(16)
	e := NewEngine(st, WithTracer(tracer))
	for i := 0; i < 3; i++ {
		if _, err := e.QueryString(query); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[obs.TraceID]bool{}
	for _, tr := range tracer.Recent() {
		if tr.ID == "" || seen[tr.ID] {
			t.Errorf("trace ID %q missing or repeated", tr.ID)
		}
		seen[tr.ID] = true
	}
}
