package sparql

import (
	"context"
	"fmt"

	"repro/internal/rdf"
)

// Execute applies a parsed update request to the engine's store.
func (e *Engine) Execute(u *Update) error {
	return e.UpdateContext(context.Background(), u)
}

// ExecuteString parses and applies an update request.
func (e *Engine) ExecuteString(src string) error {
	u, err := ParseUpdate(src)
	if err != nil {
		return err
	}
	return e.Execute(u)
}

// executeOpContext applies one operation. The context is honored only
// during the read phase of DELETE/INSERT WHERE; the write phases of
// every operation run to completion so each operation stays atomic.
func (e *Engine) executeOpContext(ctx context.Context, op UpdateOperation) error {
	switch o := op.(type) {
	case InsertDataOp:
		for _, q := range o.Quads {
			e.store.Insert(q)
		}
		return nil
	case DeleteDataOp:
		for _, q := range o.Quads {
			e.store.Delete(q)
		}
		return nil
	case ClearOp:
		return e.executeClear(o)
	case ModifyOp:
		return e.executeModify(ctx, o)
	default:
		return fmt.Errorf("sparql: unknown update operation %T", op)
	}
}

func (e *Engine) executeClear(o ClearOp) error {
	clearGraph := func(g rdf.Term) {
		for _, t := range e.store.MatchAll(g, rdf.Term{}, rdf.Term{}, rdf.Term{}) {
			e.store.Delete(rdf.NewQuad(t.S, t.P, t.O, g))
		}
	}
	switch {
	case o.All:
		clearGraph(rdf.Term{})
		for _, g := range e.store.GraphNames() {
			clearGraph(g)
		}
	case o.Default, o.Graph.IsZero():
		clearGraph(rdf.Term{})
	default:
		clearGraph(o.Graph)
	}
	return nil
}

func (e *Engine) executeModify(ctx context.Context, o ModifyOp) error {
	r := &run{e: e, vt: newVarTable()}
	r.bindContext(ctx)
	collectGroupVars(o.Where, r.vt)
	for _, qp := range append(append([]QuadPattern{}, o.Delete...), o.Insert...) {
		collectPatternTermVars(qp.S, r.vt)
		collectPatternTermVars(qp.P, r.vt)
		collectPatternTermVars(qp.O, r.vt)
		collectPatternTermVars(qp.Graph, r.vt)
	}
	rows, err := r.evalGroup(o.Where, []solution{make(solution, len(r.vt.names))}, graphCtx{})
	if err != nil {
		return err
	}

	instantiate := func(tmpl []QuadPattern, row solution) []rdf.Quad {
		var out []rdf.Quad
		for _, qp := range tmpl {
			s, okS := r.resolve(qp.S, row)
			p, okP := r.resolve(qp.P, row)
			obj, okO := r.resolve(qp.O, row)
			if !okS || !okP || !okO {
				continue
			}
			g := rdf.Term{}
			if qp.Graph.IsVar || !qp.Graph.Term.IsZero() {
				gv, okG := r.resolve(qp.Graph, row)
				if !okG {
					continue
				}
				g = gv
			}
			q := rdf.NewQuad(s, p, obj, g)
			if q.Triple().Valid() {
				out = append(out, q)
			}
		}
		return out
	}

	// Collect both sets fully before mutating, per SPARQL Update
	// semantics (WHERE is evaluated against the pre-update state).
	var toDelete, toInsert []rdf.Quad
	for _, row := range rows {
		toDelete = append(toDelete, instantiate(o.Delete, row)...)
		toInsert = append(toInsert, instantiate(o.Insert, row)...)
	}
	for _, q := range toDelete {
		e.store.Delete(q)
	}
	for _, q := range toInsert {
		e.store.Insert(q)
	}
	return nil
}
