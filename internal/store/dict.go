// Package store provides an in-memory, indexed RDF quad store used as
// the storage backend of the SPARQL engine. It plays the role Virtuoso 7
// plays in the QB2OLAP paper.
//
// Design: terms are interned into a dictionary mapping each distinct
// rdf.Term to a dense uint32 id. All triple indexes and all join
// processing operate on ids, so pattern matching and joins compare
// machine words rather than strings. Each graph keeps three orderings
// (SPO, POS, OSP) as sorted slices, giving O(log n + k) pattern scans
// with excellent cache behaviour for the read-mostly OLAP workload.
//
// Concurrency contract: Store and Dict are safe for concurrent use by
// any number of readers and writers. Index snapshots handed to a scan
// are immutable — refresh() always builds fresh slices — so a pattern
// scan sees a consistent state even while concurrent writers add or
// remove quads; each scan is atomic, but two scans of one query may
// observe different states (per-scan snapshot isolation). Callers that
// need a whole multi-scan operation to be exclusive must serialize it
// externally, as endpoint.Server does for SPARQL updates.
package store

import (
	"sync"

	"repro/internal/rdf"
)

// ID is a dense dictionary identifier for an interned term. The zero ID
// is reserved and never assigned, so it can act as a wildcard.
type ID uint32

// NoID is the reserved wildcard id.
const NoID ID = 0

// Dict interns rdf.Term values to dense IDs and back. It is safe for
// concurrent use.
type Dict struct {
	mu    sync.RWMutex
	toID  map[rdf.Term]ID
	terms []rdf.Term // index 0 unused
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{
		toID:  make(map[rdf.Term]ID),
		terms: make([]rdf.Term, 1),
	}
}

// Intern returns the id for t, assigning a fresh one on first sight.
func (d *Dict) Intern(t rdf.Term) ID {
	d.mu.RLock()
	id, ok := d.toID[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.toID[t]; ok {
		return id
	}
	id = ID(len(d.terms))
	d.toID[t] = id
	d.terms = append(d.terms, t)
	return id
}

// Lookup returns the id for t if it is already interned.
func (d *Dict) Lookup(t rdf.Term) (ID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.toID[t]
	return id, ok
}

// Term returns the term for an id. It panics on out-of-range ids, which
// indicate a bug (ids only come from this dictionary).
func (d *Dict) Term(id ID) rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms[id]
}

// Len returns the number of interned terms.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms) - 1
}
