package store

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
)

// scanFixture builds a store with n subjects, each carrying a type, a
// value, and a label, plus one named graph, so every index (SPO, POS,
// OSP) and both graphs get exercised.
func scanFixture(n int) *Store {
	st := New()
	typ := rdf.NewIRI("http://ex/type")
	item := rdf.NewIRI("http://ex/Item")
	val := rdf.NewIRI("http://ex/value")
	g := rdf.NewIRI("http://ex/g")
	var ts []rdf.Triple
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://ex/s/%04d", i))
		ts = append(ts,
			rdf.NewTriple(s, typ, item),
			rdf.NewTriple(s, val, rdf.NewInteger(int64(i%7))),
		)
	}
	st.InsertTriples(rdf.Term{}, ts)
	st.InsertTriples(g, ts[:4])
	return st
}

// collectScan drains a cursor into a slice.
func collectScan(sc *Scan) []IDTriple {
	var out []IDTriple
	for {
		t, ok := sc.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

// TestScanMatchesMatchIDs checks the cursor yields exactly the
// MatchIDs stream, in the same order, for every pattern shape: S / P /
// O / SP / SO / PO / SPO bound and the full wildcard, on the default
// graph and a named graph.
func TestScanMatchesMatchIDs(t *testing.T) {
	st := scanFixture(50)
	dict := st.Dict()
	sid, _ := dict.Lookup(rdf.NewIRI("http://ex/s/0003"))
	pid, _ := dict.Lookup(rdf.NewIRI("http://ex/value"))
	oid, _ := dict.Lookup(rdf.NewInteger(3))
	tid, _ := dict.Lookup(rdf.NewIRI("http://ex/type"))
	itemID, _ := dict.Lookup(rdf.NewIRI("http://ex/Item"))
	gid, _ := dict.Lookup(rdf.NewIRI("http://ex/g"))

	pats := []IDTriple{
		{},
		{S: sid},
		{P: pid},
		{O: oid},
		{S: sid, P: pid},
		{S: sid, O: oid},
		{P: tid, O: itemID},
		{S: sid, P: pid, O: oid},
		{S: 9999}, // unknown id: no matches
	}
	for _, g := range []ID{NoID, gid} {
		for _, pat := range pats {
			var want []IDTriple
			st.MatchIDs(g, pat, func(tr IDTriple) bool {
				want = append(want, tr)
				return true
			})
			got := collectScan(st.ScanIDs(g, pat))
			if len(got) != len(want) {
				t.Fatalf("g=%d pat=%+v: scan returned %d triples, MatchIDs %d", g, pat, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("g=%d pat=%+v: triple %d differs: %+v vs %+v", g, pat, i, got[i], want[i])
				}
			}
		}
	}
}

// TestScanSnapshotSurvivesWrites checks a suspended cursor keeps
// reading its creation-time snapshot while a writer mutates the graph —
// the property the streaming query pipeline relies on to hold a cursor
// across chunk boundaries without blocking writers.
func TestScanSnapshotSurvivesWrites(t *testing.T) {
	st := scanFixture(20)
	pid, _ := st.Dict().Lookup(rdf.NewIRI("http://ex/value"))
	pat := IDTriple{P: pid}

	var want []IDTriple
	st.MatchIDs(NoID, pat, func(tr IDTriple) bool {
		want = append(want, tr)
		return true
	})

	sc := st.ScanIDs(NoID, pat)
	// Drain half, then mutate: the insert must neither block (the
	// cursor holds no lock) nor leak into the suspended snapshot.
	got := make([]IDTriple, 0, len(want))
	for i := 0; i < len(want)/2; i++ {
		tr, ok := sc.Next()
		if !ok {
			t.Fatal("cursor exhausted early")
		}
		got = append(got, tr)
	}
	st.InsertTriples(rdf.Term{}, []rdf.Triple{
		rdf.NewTriple(rdf.NewIRI("http://ex/s/zzzz"), rdf.NewIRI("http://ex/value"), rdf.NewInteger(2)),
	})
	got = append(got, collectScan(sc)...)

	if len(got) != len(want) {
		t.Fatalf("snapshot scan saw %d triples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("triple %d differs after concurrent write", i)
		}
	}

	// A fresh cursor does see the write.
	if n := len(collectScan(st.ScanIDs(NoID, pat))); n != len(want)+1 {
		t.Fatalf("fresh scan saw %d triples, want %d", n, len(want)+1)
	}
}

// TestMatchScanTermLevel checks term-level cursors resolve terms like
// Match and return empty cursors for unknown bound terms and graphs.
func TestMatchScanTermLevel(t *testing.T) {
	st := scanFixture(10)
	val := rdf.NewIRI("http://ex/value")

	var want []rdf.Triple
	st.Match(rdf.Term{}, rdf.Term{}, val, rdf.Term{}, func(tr rdf.Triple) bool {
		want = append(want, tr)
		return true
	})
	sc := st.MatchScan(rdf.Term{}, rdf.Term{}, val, rdf.Term{})
	for i := 0; ; i++ {
		tr, ok := sc.NextTriple()
		if !ok {
			if i != len(want) {
				t.Fatalf("cursor ended after %d triples, want %d", i, len(want))
			}
			break
		}
		if i >= len(want) || tr != want[i] {
			t.Fatalf("triple %d differs: %v", i, tr)
		}
	}

	if _, ok := st.MatchScan(rdf.Term{}, rdf.NewIRI("http://ex/absent"), rdf.Term{}, rdf.Term{}).NextTriple(); ok {
		t.Error("unknown bound term must yield an empty cursor")
	}
	if _, ok := st.MatchScan(rdf.NewIRI("http://ex/nograph"), rdf.Term{}, rdf.Term{}, rdf.Term{}).NextTriple(); ok {
		t.Error("unknown graph must yield an empty cursor")
	}
}
