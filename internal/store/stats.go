package store

import (
	"sort"

	"repro/internal/rdf"
)

// Store statistics: per-graph and per-predicate cardinalities backing
// the /stats endpoint, the estimated-vs-actual EXPLAIN output, and the
// cost-based query planner (sparql/plan.go), whose System R-style
// cardinality model divides a pattern's base count by these distinct
// cardinalities to order joins and pick QL translations.
//
// Statistics are recomputed lazily, piggybacking on the same dirty
// tracking as refresh(): a mutation only clears the cached pointer, so
// the bulk-load hot path pays one assignment per mutating call, and the
// first statistics reader after a write burst pays three linear walks
// over the already-sorted orderings. Computed snapshots are immutable
// and shared, so concurrent readers never copy.

// PredStat summarizes one predicate within one graph.
type PredStat struct {
	Count     int // triples with this predicate
	DistinctS int // distinct subjects among them
	DistinctO int // distinct objects among them
}

// GraphStat summarizes one graph.
type GraphStat struct {
	Triples            int
	DistinctSubjects   int
	DistinctPredicates int
	DistinctObjects    int
}

// gstats is the cached per-graph statistics snapshot. Immutable once
// computed.
type gstats struct {
	graph GraphStat
	preds map[ID]PredStat
}

// computeStats derives the snapshot from the sorted orderings. Callers
// must hold the write lock and have called refresh() first.
func (g *graphIndex) computeStats() *gstats {
	st := &gstats{
		graph: GraphStat{Triples: len(g.set)},
		preds: make(map[ID]PredStat),
	}
	// SPO walk: distinct subjects, and distinct subjects per predicate
	// via (S, P) group boundaries.
	for i, t := range g.spo {
		if i == 0 || t.S != g.spo[i-1].S {
			st.graph.DistinctSubjects++
		}
		if i == 0 || t.S != g.spo[i-1].S || t.P != g.spo[i-1].P {
			ps := st.preds[t.P]
			ps.DistinctS++
			st.preds[t.P] = ps
		}
	}
	// POS walk: per-predicate triple counts and distinct objects, and
	// distinct predicates via P group boundaries.
	for i, t := range g.pos {
		ps := st.preds[t.P]
		ps.Count++
		if i == 0 || t.P != g.pos[i-1].P {
			st.graph.DistinctPredicates++
		}
		if i == 0 || t.P != g.pos[i-1].P || t.O != g.pos[i-1].O {
			ps.DistinctO++
		}
		st.preds[t.P] = ps
	}
	// OSP walk: distinct objects.
	for i, t := range g.osp {
		if i == 0 || t.O != g.osp[i-1].O {
			st.graph.DistinctObjects++
		}
	}
	return st
}

// gstatsFor returns the cached statistics for graph g, recomputing
// under the write lock when a mutation invalidated them (the same
// upgrade dance as MatchIDs). Returns nil for an unknown graph.
func (s *Store) gstatsFor(g ID) *gstats {
	s.mu.RLock()
	gi := s.graphFor(g, false)
	if gi == nil {
		s.mu.RUnlock()
		return nil
	}
	if st := gi.stats; st != nil {
		s.mu.RUnlock()
		return st
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	gi.refresh()
	if gi.stats == nil {
		gi.stats = gi.computeStats()
	}
	return gi.stats
}

// GraphStat returns the cardinality summary of graph g (NoID for the
// default graph); zeros for an unknown graph.
func (s *Store) GraphStat(g ID) GraphStat {
	st := s.gstatsFor(g)
	if st == nil {
		return GraphStat{}
	}
	return st.graph
}

// PredicateStat returns the per-predicate cardinalities of p in graph
// g, reporting whether the predicate occurs there. The query planner
// calls this per join operand, so it must stay cheap: after the first
// call following a write burst it is two lock acquisitions and a map
// lookup.
func (s *Store) PredicateStat(g ID, p ID) (PredStat, bool) {
	st := s.gstatsFor(g)
	if st == nil {
		return PredStat{}, false
	}
	ps, ok := st.preds[p]
	return ps, ok
}

// PredicateStats is the term-level view of one predicate's statistics.
type PredicateStats struct {
	Predicate        string `json:"predicate"`
	Count            int    `json:"count"`
	DistinctSubjects int    `json:"distinctSubjects"`
	DistinctObjects  int    `json:"distinctObjects"`
}

// GraphStats is the term-level statistics view of one graph.
type GraphStats struct {
	Graph              string           `json:"graph,omitempty"` // empty = default graph
	Triples            int              `json:"triples"`
	DistinctSubjects   int              `json:"distinctSubjects"`
	DistinctPredicates int              `json:"distinctPredicates"`
	DistinctObjects    int              `json:"distinctObjects"`
	Predicates         []PredicateStats `json:"predicates,omitempty"`
}

// Stats is the full store statistics snapshot served on /stats.
type Stats struct {
	Triples int          `json:"triples"`
	Terms   int          `json:"terms"`
	Graphs  []GraphStats `json:"graphs"`
}

// Stats returns the term-level statistics for every graph, predicates
// sorted by descending count (ties by IRI) for stable JSON.
func (s *Store) Stats() Stats {
	out := Stats{Terms: s.dict.Len()}
	gids := append([]ID{NoID}, s.NamedGraphIDs()...)
	for _, gid := range gids {
		st := s.gstatsFor(gid)
		if st == nil || (gid != NoID && st.graph.Triples == 0) {
			continue
		}
		gs := GraphStats{
			Triples:            st.graph.Triples,
			DistinctSubjects:   st.graph.DistinctSubjects,
			DistinctPredicates: st.graph.DistinctPredicates,
			DistinctObjects:    st.graph.DistinctObjects,
		}
		if gid != NoID {
			gs.Graph = s.dict.Term(gid).Value
		}
		for pid, ps := range st.preds {
			gs.Predicates = append(gs.Predicates, PredicateStats{
				Predicate:        s.dict.Term(pid).Value,
				Count:            ps.Count,
				DistinctSubjects: ps.DistinctS,
				DistinctObjects:  ps.DistinctO,
			})
		}
		sort.Slice(gs.Predicates, func(i, j int) bool {
			a, b := gs.Predicates[i], gs.Predicates[j]
			if a.Count != b.Count {
				return a.Count > b.Count
			}
			return a.Predicate < b.Predicate
		})
		out.Triples += gs.Triples
		out.Graphs = append(out.Graphs, gs)
	}
	return out
}

// ObjectCount pairs an object term with the number of triples pointing
// at it through some fixed predicate.
type ObjectCount struct {
	Object rdf.Term
	Count  int
}

// ObjectCounts groups the triples of graph g with predicate pred by
// object and counts each group, exploiting the contiguous (P, O) runs
// of the POS ordering. With pred = qb4o:memberOf this yields the
// per-level member counts of the enriched cube. Results are sorted by
// object term.
func (s *Store) ObjectCounts(g rdf.Term, pred rdf.Term) []ObjectCount {
	var gid ID
	if !g.IsZero() {
		var ok bool
		gid, ok = s.dict.Lookup(g)
		if !ok {
			return nil
		}
	}
	pid, ok := s.dict.Lookup(pred)
	if !ok {
		return nil
	}
	var out []ObjectCount
	var cur ID
	// MatchIDs with only P bound scans the POS ordering, so triples
	// arrive grouped by object.
	s.MatchIDs(gid, IDTriple{P: pid}, func(t IDTriple) bool {
		if len(out) == 0 || t.O != cur {
			out = append(out, ObjectCount{Object: s.dict.Term(t.O)})
			cur = t.O
		}
		out[len(out)-1].Count++
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Object.Compare(out[j].Object) < 0 })
	return out
}
