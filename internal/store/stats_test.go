package store

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/rdf"
)

func statsFixture() *Store {
	st := New()
	// p: 4 triples, 3 subjects, 2 objects; q: 2 triples, 2 subjects,
	// 2 objects.
	triples := []rdf.Triple{
		rdf.NewTriple(iri("s1"), iri("p"), iri("o1")),
		rdf.NewTriple(iri("s1"), iri("p"), iri("o2")),
		rdf.NewTriple(iri("s2"), iri("p"), iri("o1")),
		rdf.NewTriple(iri("s3"), iri("p"), iri("o1")),
		rdf.NewTriple(iri("s1"), iri("q"), iri("o3")),
		rdf.NewTriple(iri("s4"), iri("q"), iri("o1")),
	}
	st.InsertTriples(rdf.Term{}, triples)
	return st
}

func TestGraphAndPredicateStats(t *testing.T) {
	st := statsFixture()
	gs := st.GraphStat(NoID)
	want := GraphStat{Triples: 6, DistinctSubjects: 4, DistinctPredicates: 2, DistinctObjects: 3}
	if gs != want {
		t.Errorf("GraphStat = %+v, want %+v", gs, want)
	}
	pid, _ := st.Dict().Lookup(iri("p"))
	ps, ok := st.PredicateStat(NoID, pid)
	if !ok || ps != (PredStat{Count: 4, DistinctS: 3, DistinctO: 2}) {
		t.Errorf("PredicateStat(p) = %+v ok=%v", ps, ok)
	}
	if _, ok := st.PredicateStat(NoID, 99999); ok {
		t.Error("unknown predicate should not be found")
	}
	if gs := st.GraphStat(12345); gs != (GraphStat{}) {
		t.Errorf("unknown graph stat = %+v, want zeros", gs)
	}
}

func TestStatsInvalidatedByMutation(t *testing.T) {
	st := statsFixture()
	before := st.GraphStat(NoID)
	st.Insert(rdf.Quad{S: iri("s9"), P: iri("p"), O: iri("o9")})
	after := st.GraphStat(NoID)
	if after.Triples != before.Triples+1 || after.DistinctSubjects != before.DistinctSubjects+1 {
		t.Errorf("stats stale after insert: before=%+v after=%+v", before, after)
	}
	st.Delete(rdf.Quad{S: iri("s9"), P: iri("p"), O: iri("o9")})
	if got := st.GraphStat(NoID); got != before {
		t.Errorf("stats stale after delete: %+v, want %+v", got, before)
	}
}

func TestStatsSnapshot(t *testing.T) {
	st := statsFixture()
	st.Insert(rdf.Quad{S: iri("s1"), P: iri("p"), O: iri("o1"), G: iri("g1")})
	snap := st.Stats()
	if snap.Triples != 7 || snap.Terms == 0 {
		t.Errorf("snapshot totals = %+v", snap)
	}
	if len(snap.Graphs) != 2 {
		t.Fatalf("got %d graphs, want 2", len(snap.Graphs))
	}
	def := snap.Graphs[0]
	if def.Graph != "" || len(def.Predicates) != 2 {
		t.Fatalf("default graph stats = %+v", def)
	}
	// Predicates sorted by descending count.
	if def.Predicates[0].Predicate != "http://x/p" || def.Predicates[0].Count != 4 {
		t.Errorf("top predicate = %+v", def.Predicates[0])
	}
	if snap.Graphs[1].Graph != "http://x/g1" || snap.Graphs[1].Triples != 1 {
		t.Errorf("named graph stats = %+v", snap.Graphs[1])
	}
}

func TestObjectCounts(t *testing.T) {
	st := statsFixture()
	got := st.ObjectCounts(rdf.Term{}, iri("p"))
	if len(got) != 2 {
		t.Fatalf("got %d object groups, want 2: %+v", len(got), got)
	}
	byObj := map[string]int{}
	for _, oc := range got {
		byObj[oc.Object.Value] = oc.Count
	}
	if byObj["http://x/o1"] != 3 || byObj["http://x/o2"] != 1 {
		t.Errorf("object counts = %v", byObj)
	}
	if st.ObjectCounts(rdf.Term{}, iri("nope")) != nil {
		t.Error("unknown predicate should yield nil")
	}
}

// TestStatsConcurrentMixedLoad hammers statistics reads while writers
// insert and queries scan — run under -race this is the regression test
// for the lazy cache's lock discipline. Correctness check: once writers
// stop, statistics must converge on the final store contents.
func TestStatsConcurrentMixedLoad(t *testing.T) {
	st := New()
	const writers, perWriter = 4, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Statistics readers and pattern scanners run until writers finish.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				gs := st.GraphStat(NoID)
				if gs.Triples < 0 || gs.DistinctSubjects > gs.Triples {
					t.Errorf("inconsistent snapshot: %+v", gs)
					return
				}
				st.Stats()
				st.Count(NoID, IDTriple{})
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				st.Insert(rdf.Quad{
					S: iri(fmt.Sprintf("s%d-%d", w, i)),
					P: iri(fmt.Sprintf("p%d", i%7)),
					O: iri(fmt.Sprintf("o%d", i%13)),
				})
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	gs := st.GraphStat(NoID)
	if gs.Triples != writers*perWriter {
		t.Errorf("final triples = %d, want %d", gs.Triples, writers*perWriter)
	}
	if gs.DistinctSubjects != writers*perWriter || gs.DistinctPredicates != 7 || gs.DistinctObjects != 13 {
		t.Errorf("final stats = %+v", gs)
	}
}

func TestInsertTriplesPChunksAndCounts(t *testing.T) {
	st := New()
	ts := make([]rdf.Triple, 0, 10000)
	for i := 0; i < 10000; i++ {
		ts = append(ts, rdf.NewTriple(iri(fmt.Sprintf("s%d", i)), iri("p"), iri("o")))
	}
	ts = append(ts, ts[0]) // duplicate, must not count as added
	if added := st.InsertTriplesP(rdf.Term{}, ts, nil); added != 10000 {
		t.Errorf("added = %d, want 10000", added)
	}
	if st.Len(rdf.Term{}) != 10000 {
		t.Errorf("len = %d", st.Len(rdf.Term{}))
	}
}
