package store

import (
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/rdf"
)

// IDTriple is a triple of dictionary ids.
type IDTriple struct {
	S, P, O ID
}

// graphIndex holds one RDF graph as a deduplicating set plus three
// sorted orderings, rebuilt lazily after mutations.
type graphIndex struct {
	set   map[IDTriple]struct{}
	spo   []IDTriple // sorted (S, P, O)
	pos   []IDTriple // sorted (P, O, S)
	osp   []IDTriple // sorted (O, S, P)
	dirty bool
	stats *gstats // cached statistics snapshot; nil after a mutation
}

func newGraphIndex() *graphIndex {
	return &graphIndex{set: make(map[IDTriple]struct{})}
}

func (g *graphIndex) insert(t IDTriple) bool {
	if _, ok := g.set[t]; ok {
		return false
	}
	g.set[t] = struct{}{}
	g.dirty = true
	g.stats = nil
	return true
}

func (g *graphIndex) remove(t IDTriple) bool {
	if _, ok := g.set[t]; !ok {
		return false
	}
	delete(g.set, t)
	g.dirty = true
	g.stats = nil
	return true
}

// refresh rebuilds the sorted orderings after mutations. It always
// allocates fresh slices and never sorts in place: scans that captured
// the previous slices (see MatchIDs) rely on them staying immutable.
// Callers must hold the store's write lock.
func (g *graphIndex) refresh() {
	if !g.dirty {
		return
	}
	n := len(g.set)
	g.spo = make([]IDTriple, 0, n)
	for t := range g.set {
		g.spo = append(g.spo, t)
	}
	g.pos = make([]IDTriple, n)
	copy(g.pos, g.spo)
	g.osp = make([]IDTriple, n)
	copy(g.osp, g.spo)
	sort.Slice(g.spo, func(i, j int) bool { return lessSPO(g.spo[i], g.spo[j]) })
	sort.Slice(g.pos, func(i, j int) bool { return lessPOS(g.pos[i], g.pos[j]) })
	sort.Slice(g.osp, func(i, j int) bool { return lessOSP(g.osp[i], g.osp[j]) })
	g.dirty = false
}

func lessSPO(a, b IDTriple) bool {
	if a.S != b.S {
		return a.S < b.S
	}
	if a.P != b.P {
		return a.P < b.P
	}
	return a.O < b.O
}

func lessPOS(a, b IDTriple) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	if a.O != b.O {
		return a.O < b.O
	}
	return a.S < b.S
}

func lessOSP(a, b IDTriple) bool {
	if a.O != b.O {
		return a.O < b.O
	}
	if a.S != b.S {
		return a.S < b.S
	}
	return a.P < b.P
}

// Store is an in-memory RDF dataset: one default graph plus any number
// of named graphs, sharing a single term dictionary. It is safe for
// concurrent use; reads proceed under a read lock once indexes are
// fresh, so any number of query workers scan in parallel and only
// mutations serialize.
//
// Iterator safety (audited for the parallel SPARQL engine): each
// Match/MatchIDs scan holds the read lock for its whole duration, so a
// single scan is atomic with respect to writers. Writers mark the
// touched graph dirty; the next scan briefly upgrades to the write lock
// to rebuild the sorted orderings. Because rebuilds allocate fresh
// slices (see graphIndex.refresh), a scan that raced with a further
// mutation keeps reading the previous, immutable ordering — per-scan
// snapshot semantics. Consumers needing multi-scan consistency must
// serialize with the writers themselves (endpoint.Server does this for
// SPARQL updates).
type Store struct {
	mu    sync.RWMutex
	dict  *Dict
	def   *graphIndex
	named map[ID]*graphIndex
}

// New returns an empty store.
func New() *Store {
	return &Store{
		dict:  NewDict(),
		def:   newGraphIndex(),
		named: make(map[ID]*graphIndex),
	}
}

// Dict exposes the store's term dictionary.
func (s *Store) Dict() *Dict { return s.dict }

// graphFor returns the index for the given graph term (zero = default),
// creating the named graph when create is set.
func (s *Store) graphFor(g ID, create bool) *graphIndex {
	if g == NoID {
		return s.def
	}
	gi, ok := s.named[g]
	if !ok && create {
		gi = newGraphIndex()
		s.named[g] = gi
	}
	return gi
}

// Insert adds a quad and reports whether it was new.
func (s *Store) Insert(q rdf.Quad) bool {
	t := IDTriple{s.dict.Intern(q.S), s.dict.Intern(q.P), s.dict.Intern(q.O)}
	var g ID
	if !q.G.IsZero() {
		g = s.dict.Intern(q.G)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.graphFor(g, true).insert(t)
}

// InsertTriples bulk-adds triples into the graph named by g (zero Term
// for the default graph) and returns the number actually added.
func (s *Store) InsertTriples(g rdf.Term, ts []rdf.Triple) int {
	return s.InsertTriplesP(g, ts, nil)
}

// insertChunk bounds how many triples a bulk insert adds per lock
// acquisition, so progress can be reported and readers are not starved
// during a large load.
const insertChunk = 4096

// InsertTriplesP is InsertTriples with bulk-load progress reporting:
// ph (nil-safe) grows by len(ts) and advances per inserted chunk. The
// write lock is taken per chunk, not for the whole load.
func (s *Store) InsertTriplesP(g rdf.Term, ts []rdf.Triple, ph *obs.Phase) int {
	var gid ID
	if !g.IsZero() {
		gid = s.dict.Intern(g)
	}
	ph.Grow(int64(len(ts)))
	added := 0
	for len(ts) > 0 {
		chunk := ts
		if len(chunk) > insertChunk {
			chunk = chunk[:insertChunk]
		}
		ts = ts[len(chunk):]
		s.mu.Lock()
		gi := s.graphFor(gid, true)
		for _, t := range chunk {
			it := IDTriple{s.dict.Intern(t.S), s.dict.Intern(t.P), s.dict.Intern(t.O)}
			if gi.insert(it) {
				added++
			}
		}
		s.mu.Unlock()
		ph.Add(int64(len(chunk)))
	}
	return added
}

// Delete removes a quad and reports whether it was present.
func (s *Store) Delete(q rdf.Quad) bool {
	sid, ok := s.dict.Lookup(q.S)
	if !ok {
		return false
	}
	pid, ok := s.dict.Lookup(q.P)
	if !ok {
		return false
	}
	oid, ok := s.dict.Lookup(q.O)
	if !ok {
		return false
	}
	var gid ID
	if !q.G.IsZero() {
		gid, ok = s.dict.Lookup(q.G)
		if !ok {
			return false
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	gi := s.graphFor(gid, false)
	if gi == nil {
		return false
	}
	return gi.remove(IDTriple{sid, pid, oid})
}

// Len returns the number of triples in the graph named by g (zero Term
// for the default graph).
func (s *Store) Len(g rdf.Term) int {
	var gid ID
	if !g.IsZero() {
		var ok bool
		gid, ok = s.dict.Lookup(g)
		if !ok {
			return 0
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	gi := s.graphFor(gid, false)
	if gi == nil {
		return 0
	}
	return len(gi.set)
}

// TotalLen returns the number of triples across all graphs.
func (s *Store) TotalLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.def.set)
	for _, gi := range s.named {
		n += len(gi.set)
	}
	return n
}

// GraphNames returns the terms naming the non-empty named graphs.
func (s *Store) GraphNames() []rdf.Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]rdf.Term, 0, len(s.named))
	for gid, gi := range s.named {
		if len(gi.set) > 0 {
			out = append(out, s.dict.Term(gid))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// GraphID resolves a graph term to its id, reporting whether the graph
// exists. The zero term resolves to NoID (the default graph).
func (s *Store) GraphID(g rdf.Term) (ID, bool) {
	if g.IsZero() {
		return NoID, true
	}
	gid, ok := s.dict.Lookup(g)
	if !ok {
		return NoID, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, exists := s.named[gid]
	return gid, exists
}

// NamedGraphIDs returns ids of all named graphs.
func (s *Store) NamedGraphIDs() []ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ID, 0, len(s.named))
	for gid := range s.named {
		out = append(out, gid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MatchIDs streams all id-triples in graph g matching the pattern (NoID
// components are wildcards) to fn. Iteration stops early if fn returns
// false. Pass NoID as g for the default graph.
func (s *Store) MatchIDs(g ID, pat IDTriple, fn func(IDTriple) bool) {
	s.mu.RLock()
	gi := s.graphFor(g, false)
	if gi == nil {
		s.mu.RUnlock()
		return
	}
	if gi.dirty {
		// Upgrade to rebuild the orderings, then downgrade. A scan that
		// races with a further mutation reads the previous (immutable)
		// slices, which is the usual snapshot behaviour.
		s.mu.RUnlock()
		s.mu.Lock()
		gi.refresh()
		s.mu.Unlock()
		s.mu.RLock()
	}
	defer s.mu.RUnlock()
	scanIndex(gi, pat, fn)
}

// Count returns the exact number of triples matching the pattern in
// graph g. It uses binary search on the chosen index, so it is cheap
// enough for the query planner to call per pattern.
func (s *Store) Count(g ID, pat IDTriple) int {
	n := 0
	s.MatchIDs(g, pat, func(IDTriple) bool { n++; return true })
	return n
}

// Match streams term-level triples matching a term pattern (zero terms
// are wildcards) from graph g (zero Term for default).
func (s *Store) Match(g rdf.Term, sub, pred, obj rdf.Term, fn func(rdf.Triple) bool) {
	var gid ID
	if !g.IsZero() {
		var ok bool
		gid, ok = s.dict.Lookup(g)
		if !ok {
			return
		}
	}
	pat, ok := s.patternIDs(sub, pred, obj)
	if !ok {
		return
	}
	s.MatchIDs(gid, pat, func(t IDTriple) bool {
		return fn(rdf.NewTriple(s.dict.Term(t.S), s.dict.Term(t.P), s.dict.Term(t.O)))
	})
}

// MatchAll collects all matching triples from graph g.
func (s *Store) MatchAll(g rdf.Term, sub, pred, obj rdf.Term) []rdf.Triple {
	var out []rdf.Triple
	s.Match(g, sub, pred, obj, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// patternIDs converts a term pattern to an id pattern; ok is false when
// a bound term is not in the dictionary (no triples can match).
func (s *Store) patternIDs(sub, pred, obj rdf.Term) (IDTriple, bool) {
	var pat IDTriple
	if !sub.IsZero() {
		id, ok := s.dict.Lookup(sub)
		if !ok {
			return pat, false
		}
		pat.S = id
	}
	if !pred.IsZero() {
		id, ok := s.dict.Lookup(pred)
		if !ok {
			return pat, false
		}
		pat.P = id
	}
	if !obj.IsZero() {
		id, ok := s.dict.Lookup(obj)
		if !ok {
			return pat, false
		}
		pat.O = id
	}
	return pat, true
}

// Scan is a resumable cursor over one index snapshot. It is created by
// ScanIDs/MatchScan under the store's read lock, which captures the
// refreshed sorted ordering and the seek position; Next then iterates
// without any locking, because refresh() always builds fresh slices and
// never mutates a published one (see the package comment's concurrency
// contract). A Scan may therefore be suspended indefinitely — e.g. held
// across chunk boundaries by the streaming query pipeline — without
// holding up writers; like every scan it observes the snapshot current
// at creation time.
type Scan struct {
	dict *Dict
	idx  []IDTriple
	pos  int
	pat  IDTriple
	mode scanMode
}

type scanMode uint8

const (
	scanDone scanMode = iota // exhausted or empty
	scanSPO                  // S bound: prefix scan of the SPO ordering
	scanPOS                  // P bound: prefix scan of the POS ordering
	scanOSP                  // O bound: prefix scan of the OSP ordering
	scanAll                  // nothing bound: full SPO iteration
)

// ScanIDs returns a resumable cursor over the id-triples in graph g
// matching the pattern (NoID components are wildcards), equivalent to
// MatchIDs but pull-driven. Pass NoID as g for the default graph.
func (s *Store) ScanIDs(g ID, pat IDTriple) *Scan {
	s.mu.RLock()
	gi := s.graphFor(g, false)
	if gi == nil {
		s.mu.RUnlock()
		return &Scan{dict: s.dict}
	}
	if gi.dirty {
		// Same upgrade dance as MatchIDs: rebuild the orderings, then
		// capture them under the read lock.
		s.mu.RUnlock()
		s.mu.Lock()
		gi.refresh()
		s.mu.Unlock()
		s.mu.RLock()
	}
	defer s.mu.RUnlock()
	sc := &Scan{dict: s.dict, pat: pat}
	switch {
	case pat.S != NoID:
		sc.mode = scanSPO
		sc.idx = gi.spo
		sc.pos = sort.Search(len(gi.spo), func(i int) bool {
			return !spoPrefixLess(gi.spo[i], pat)
		})
	case pat.P != NoID:
		sc.mode = scanPOS
		sc.idx = gi.pos
		sc.pos = sort.Search(len(gi.pos), func(i int) bool {
			return !posPrefixLess(gi.pos[i], pat)
		})
	case pat.O != NoID:
		sc.mode = scanOSP
		sc.idx = gi.osp
		sc.pos = sort.Search(len(gi.osp), func(i int) bool {
			return gi.osp[i].O >= pat.O
		})
	default:
		sc.mode = scanAll
		sc.idx = gi.spo
	}
	return sc
}

// MatchScan is the term-level ScanIDs: zero terms are wildcards, and a
// bound term missing from the dictionary yields an empty cursor (no
// triple can match it). Pass the zero Term as g for the default graph.
func (s *Store) MatchScan(g rdf.Term, sub, pred, obj rdf.Term) *Scan {
	var gid ID
	if !g.IsZero() {
		var ok bool
		gid, ok = s.dict.Lookup(g)
		if !ok {
			return &Scan{dict: s.dict}
		}
	}
	pat, ok := s.patternIDs(sub, pred, obj)
	if !ok {
		return &Scan{dict: s.dict}
	}
	return s.ScanIDs(gid, pat)
}

// Next returns the next matching id-triple, applying the same per-index
// skip/stop rules as scanIndex. ok is false once the cursor is
// exhausted.
func (c *Scan) Next() (IDTriple, bool) {
	for c.pos < len(c.idx) {
		t := c.idx[c.pos]
		c.pos++
		switch c.mode {
		case scanSPO:
			if t.S != c.pat.S {
				c.mode = scanDone
				return IDTriple{}, false
			}
			if c.pat.P != NoID && t.P != c.pat.P {
				c.mode = scanDone
				return IDTriple{}, false
			}
			if c.pat.O != NoID && t.O != c.pat.O {
				if c.pat.P != NoID {
					c.mode = scanDone
					return IDTriple{}, false
				}
				continue
			}
		case scanPOS:
			if t.P != c.pat.P {
				c.mode = scanDone
				return IDTriple{}, false
			}
			if c.pat.O != NoID && t.O != c.pat.O {
				if t.O > c.pat.O {
					c.mode = scanDone
					return IDTriple{}, false
				}
				continue
			}
		case scanOSP:
			if t.O != c.pat.O {
				c.mode = scanDone
				return IDTriple{}, false
			}
		case scanAll:
			// full iteration, no filtering
		default:
			return IDTriple{}, false
		}
		return t, true
	}
	c.mode = scanDone
	return IDTriple{}, false
}

// NextTriple is Next with the ids resolved back to terms.
func (c *Scan) NextTriple() (rdf.Triple, bool) {
	t, ok := c.Next()
	if !ok {
		return rdf.Triple{}, false
	}
	return rdf.NewTriple(c.dict.Term(t.S), c.dict.Term(t.P), c.dict.Term(t.O)), true
}

// scanIndex selects the best index for the pattern and streams matches.
func scanIndex(gi *graphIndex, pat IDTriple, fn func(IDTriple) bool) {
	switch {
	case pat.S != NoID:
		// SPO with prefix S (and P, and O).
		lo := sort.Search(len(gi.spo), func(i int) bool {
			return !spoPrefixLess(gi.spo[i], pat)
		})
		for i := lo; i < len(gi.spo); i++ {
			t := gi.spo[i]
			if t.S != pat.S {
				break
			}
			// lo was positioned at the full prefix, so within the same
			// S any mismatching P (or, with P bound, any mismatching O)
			// lies past the match range.
			if pat.P != NoID && t.P != pat.P {
				break
			}
			if pat.O != NoID && t.O != pat.O {
				if pat.P != NoID {
					break
				}
				continue
			}
			if !fn(t) {
				return
			}
		}
	case pat.P != NoID:
		// POS with prefix P (and O).
		lo := sort.Search(len(gi.pos), func(i int) bool {
			return !posPrefixLess(gi.pos[i], pat)
		})
		for i := lo; i < len(gi.pos); i++ {
			t := gi.pos[i]
			if t.P != pat.P {
				break
			}
			if pat.O != NoID && t.O != pat.O {
				if t.O > pat.O {
					break
				}
				continue
			}
			if !fn(t) {
				return
			}
		}
	case pat.O != NoID:
		// OSP with prefix O.
		lo := sort.Search(len(gi.osp), func(i int) bool {
			return gi.osp[i].O >= pat.O
		})
		for i := lo; i < len(gi.osp); i++ {
			t := gi.osp[i]
			if t.O != pat.O {
				break
			}
			if !fn(t) {
				return
			}
		}
	default:
		for _, t := range gi.spo {
			if !fn(t) {
				return
			}
		}
	}
}

// spoPrefixLess reports whether t sorts strictly before the first
// possible match of pat in SPO order.
func spoPrefixLess(t, pat IDTriple) bool {
	if t.S != pat.S {
		return t.S < pat.S
	}
	if pat.P == NoID {
		return false
	}
	if t.P != pat.P {
		return t.P < pat.P
	}
	if pat.O == NoID {
		return false
	}
	return t.O < pat.O
}

// posPrefixLess reports whether t sorts strictly before the first
// possible match of pat in POS order.
func posPrefixLess(t, pat IDTriple) bool {
	if t.P != pat.P {
		return t.P < pat.P
	}
	if pat.O == NoID {
		return false
	}
	return t.O < pat.O
}
