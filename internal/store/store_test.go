package store

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }

func TestDictInternLookup(t *testing.T) {
	d := NewDict()
	a := d.Intern(iri("a"))
	b := d.Intern(iri("b"))
	if a == b {
		t.Fatal("distinct terms must get distinct ids")
	}
	if a == NoID || b == NoID {
		t.Fatal("NoID must never be assigned")
	}
	if got := d.Intern(iri("a")); got != a {
		t.Fatal("re-interning must return the same id")
	}
	if got, ok := d.Lookup(iri("b")); !ok || got != b {
		t.Fatal("Lookup failed")
	}
	if _, ok := d.Lookup(iri("missing")); ok {
		t.Fatal("Lookup of unseen term must fail")
	}
	if d.Term(a) != iri("a") {
		t.Fatal("Term round trip failed")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestDictConcurrent(t *testing.T) {
	d := NewDict()
	done := make(chan map[string]ID, 8)
	for w := 0; w < 8; w++ {
		go func() {
			seen := make(map[string]ID)
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("t%d", i%50)
				seen[k] = d.Intern(iri(k))
			}
			done <- seen
		}()
	}
	merged := make(map[string]ID)
	for w := 0; w < 8; w++ {
		for k, v := range <-done {
			if prev, ok := merged[k]; ok && prev != v {
				t.Fatalf("term %s interned with two ids", k)
			}
			merged[k] = v
		}
	}
	if d.Len() != 50 {
		t.Fatalf("Len = %d, want 50", d.Len())
	}
}

func TestStoreInsertDeleteLen(t *testing.T) {
	s := New()
	q := rdf.NewQuad(iri("s"), iri("p"), iri("o"), rdf.Term{})
	if !s.Insert(q) {
		t.Fatal("first insert must be new")
	}
	if s.Insert(q) {
		t.Fatal("duplicate insert must report false")
	}
	if s.Len(rdf.Term{}) != 1 {
		t.Fatalf("Len = %d", s.Len(rdf.Term{}))
	}
	if !s.Delete(q) {
		t.Fatal("delete of present quad must succeed")
	}
	if s.Delete(q) {
		t.Fatal("second delete must fail")
	}
	if s.Len(rdf.Term{}) != 0 {
		t.Fatal("store should be empty")
	}
	// Deleting never-interned terms must not intern them.
	before := s.Dict().Len()
	s.Delete(rdf.NewQuad(iri("nope"), iri("nope"), iri("nope"), rdf.Term{}))
	if s.Dict().Len() != before {
		t.Fatal("Delete must not intern new terms")
	}
}

func TestStoreNamedGraphs(t *testing.T) {
	s := New()
	g1, g2 := iri("g1"), iri("g2")
	s.Insert(rdf.NewQuad(iri("s"), iri("p"), iri("o1"), g1))
	s.Insert(rdf.NewQuad(iri("s"), iri("p"), iri("o2"), g2))
	s.Insert(rdf.NewQuad(iri("s"), iri("p"), iri("o3"), rdf.Term{}))

	if s.Len(g1) != 1 || s.Len(g2) != 1 || s.Len(rdf.Term{}) != 1 {
		t.Fatal("per-graph lengths wrong")
	}
	if s.TotalLen() != 3 {
		t.Fatalf("TotalLen = %d", s.TotalLen())
	}
	names := s.GraphNames()
	if len(names) != 2 {
		t.Fatalf("GraphNames = %v", names)
	}
	if got := s.MatchAll(g1, rdf.Term{}, rdf.Term{}, rdf.Term{}); len(got) != 1 || got[0].O != iri("o1") {
		t.Fatalf("graph-scoped match = %v", got)
	}
	if _, ok := s.GraphID(iri("unknown")); ok {
		t.Fatal("unknown graph must not resolve")
	}
	if gid, ok := s.GraphID(rdf.Term{}); !ok || gid != NoID {
		t.Fatal("zero term must resolve to default graph")
	}
	if got := len(s.NamedGraphIDs()); got != 2 {
		t.Fatalf("NamedGraphIDs = %d", got)
	}
}

func TestStoreMatchPatterns(t *testing.T) {
	s := New()
	var ts []rdf.Triple
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			ts = append(ts, rdf.NewTriple(iri(fmt.Sprintf("s%d", i)), iri(fmt.Sprintf("p%d", j)), rdf.NewInteger(int64(i*10+j))))
		}
	}
	if added := s.InsertTriples(rdf.Term{}, ts); added != 15 {
		t.Fatalf("added = %d", added)
	}

	check := func(sub, pred, obj rdf.Term, want int) {
		t.Helper()
		got := len(s.MatchAll(rdf.Term{}, sub, pred, obj))
		if got != want {
			t.Errorf("Match(%v,%v,%v) = %d, want %d", sub, pred, obj, got, want)
		}
	}
	check(rdf.Term{}, rdf.Term{}, rdf.Term{}, 15)
	check(iri("s0"), rdf.Term{}, rdf.Term{}, 3)
	check(iri("s0"), iri("p1"), rdf.Term{}, 1)
	check(iri("s0"), iri("p1"), rdf.NewInteger(1), 1)
	check(iri("s0"), iri("p1"), rdf.NewInteger(99), 0)
	check(rdf.Term{}, iri("p2"), rdf.Term{}, 5)
	check(rdf.Term{}, iri("p2"), rdf.NewInteger(12), 1)
	check(rdf.Term{}, rdf.Term{}, rdf.NewInteger(42), 1)
	check(iri("s2"), rdf.Term{}, rdf.NewInteger(21), 1)
	check(iri("nothere"), rdf.Term{}, rdf.Term{}, 0)
}

func TestStoreMatchEarlyStop(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Insert(rdf.NewQuad(iri("s"), iri("p"), rdf.NewInteger(int64(i)), rdf.Term{}))
	}
	n := 0
	s.Match(rdf.Term{}, iri("s"), rdf.Term{}, rdf.Term{}, func(rdf.Triple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestStoreCount(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.Insert(rdf.NewQuad(iri(fmt.Sprintf("s%d", i%2)), iri("p"), rdf.NewInteger(int64(i)), rdf.Term{}))
	}
	d := s.Dict()
	pid, _ := d.Lookup(iri("p"))
	if got := s.Count(NoID, IDTriple{P: pid}); got != 7 {
		t.Fatalf("Count(p) = %d", got)
	}
	sid, _ := d.Lookup(iri("s0"))
	if got := s.Count(NoID, IDTriple{S: sid}); got != 4 {
		t.Fatalf("Count(s0) = %d", got)
	}
}

func TestStoreMutateAfterQueryReindexes(t *testing.T) {
	s := New()
	s.Insert(rdf.NewQuad(iri("s"), iri("p"), iri("o1"), rdf.Term{}))
	if got := len(s.MatchAll(rdf.Term{}, iri("s"), rdf.Term{}, rdf.Term{})); got != 1 {
		t.Fatal("initial query wrong")
	}
	s.Insert(rdf.NewQuad(iri("s"), iri("p"), iri("o2"), rdf.Term{}))
	if got := len(s.MatchAll(rdf.Term{}, iri("s"), rdf.Term{}, rdf.Term{})); got != 2 {
		t.Fatal("index not refreshed after insert")
	}
	s.Delete(rdf.NewQuad(iri("s"), iri("p"), iri("o1"), rdf.Term{}))
	got := s.MatchAll(rdf.Term{}, iri("s"), rdf.Term{}, rdf.Term{})
	if len(got) != 1 || got[0].O != iri("o2") {
		t.Fatalf("index not refreshed after delete: %v", got)
	}
}

// TestStoreMatchAgainstNaiveOracle cross-checks every pattern shape
// against a brute-force scan over randomly generated triples.
func TestStoreMatchAgainstNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New()
	var all []rdf.Triple
	seen := make(map[rdf.Triple]bool)
	for i := 0; i < 400; i++ {
		tr := rdf.NewTriple(
			iri(fmt.Sprintf("s%d", rng.Intn(12))),
			iri(fmt.Sprintf("p%d", rng.Intn(6))),
			rdf.NewInteger(int64(rng.Intn(20))),
		)
		if !seen[tr] {
			seen[tr] = true
			all = append(all, tr)
		}
	}
	s.InsertTriples(rdf.Term{}, all)

	naive := func(sub, pred, obj rdf.Term) int {
		n := 0
		for _, tr := range all {
			if (!sub.IsZero() && tr.S != sub) || (!pred.IsZero() && tr.P != pred) || (!obj.IsZero() && tr.O != obj) {
				continue
			}
			n++
		}
		return n
	}

	subs := []rdf.Term{{}, iri("s0"), iri("s5"), iri("s11"), iri("sX")}
	preds := []rdf.Term{{}, iri("p0"), iri("p3"), iri("pX")}
	objs := []rdf.Term{{}, rdf.NewInteger(0), rdf.NewInteger(13), rdf.NewInteger(99)}
	for _, sub := range subs {
		for _, pred := range preds {
			for _, obj := range objs {
				want := naive(sub, pred, obj)
				got := len(s.MatchAll(rdf.Term{}, sub, pred, obj))
				if got != want {
					t.Errorf("pattern (%v %v %v): got %d, want %d", sub, pred, obj, got, want)
				}
			}
		}
	}
}

func TestStoreInsertIdempotentProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		s := New()
		q := rdf.NewQuad(
			iri(fmt.Sprintf("s%d", a%4)),
			iri(fmt.Sprintf("p%d", b%4)),
			rdf.NewInteger(int64(c%4)),
			rdf.Term{},
		)
		first := s.Insert(q)
		second := s.Insert(q)
		return first && !second && s.Len(rdf.Term{}) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStoreConcurrentReadWrite hammers the store with concurrent
// inserts, deletes, and pattern scans; run with -race this locks in the
// locking discipline around the lazy index rebuild.
func TestStoreConcurrentReadWrite(t *testing.T) {
	s := New()
	p := iri("p")
	done := make(chan struct{}, 6)
	for w := 0; w < 3; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 300; i++ {
				q := rdf.NewQuad(iri(fmt.Sprintf("s%d", i%20)), p, rdf.NewInteger(int64(w*1000+i)), rdf.Term{})
				s.Insert(q)
				if i%7 == 0 {
					s.Delete(q)
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				s.MatchAll(rdf.Term{}, rdf.Term{}, p, rdf.Term{})
				s.Count(NoID, IDTriple{})
				s.TotalLen()
			}
		}()
	}
	for i := 0; i < 6; i++ {
		<-done
	}
	// Sanity: the store is still internally consistent.
	n := 0
	s.Match(rdf.Term{}, rdf.Term{}, p, rdf.Term{}, func(rdf.Triple) bool { n++; return true })
	if n != s.Len(rdf.Term{}) {
		t.Fatalf("index count %d != set count %d", n, s.Len(rdf.Term{}))
	}
}
