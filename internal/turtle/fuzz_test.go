package turtle

import (
	"testing"

	"repro/internal/rdf"
)

// FuzzParse checks the Turtle parser never panics and that whatever it
// accepts can be serialized and re-parsed to the same triple set.
func FuzzParse(f *testing.F) {
	seeds := []string{
		``,
		`<http://x/s> <http://x/p> "v" .`,
		`@prefix ex: <http://x/> . ex:s a ex:T ; ex:p "a", "b" .`,
		`@base <http://b/> . <s> <p> <o> .`,
		`_:b <http://x/p> [ <http://x/q> ( 1 2.5 1e3 true ) ] .`,
		`<http://x/s> <http://x/p> """long
multi "line" text""" .`,
		`<http://x/s> <http://x/p> "é\U0001F600" .`,
		`PREFIX ex: <http://x/>
ex:s ex:p ex:o .`,
		`@prefix : <http://x/> . :s :p :o . # comment`,
		`<s> <p> <o>`,     // missing dot
		`@prefix x <y> .`, // malformed
		"\x00\x01\xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		triples, _, err := Parse(src)
		if err != nil {
			return
		}
		// Round-trip invariant on accepted input.
		g := rdfGraph(triples)
		out := FormatGraph(g, nil)
		back, _, err := Parse(out)
		if err != nil {
			t.Fatalf("serialized form rejected: %v\ninput: %q\noutput:\n%s", err, src, out)
		}
		g2 := rdfGraph(back)
		if g.Len() != g2.Len() {
			t.Fatalf("round trip changed triple count %d -> %d\ninput: %q", g.Len(), g2.Len(), src)
		}
		for _, tr := range g.Triples() {
			if !g2.Has(tr) {
				t.Fatalf("round trip lost %v\ninput: %q", tr, src)
			}
		}
	})
}

// FuzzParseNQuads checks the N-Quads parser never panics.
func FuzzParseNQuads(f *testing.F) {
	for _, s := range []string{
		``,
		`<http://x/s> <http://x/p> "v" .`,
		`<http://x/s> <http://x/p> <http://x/o> <http://x/g> .`,
		`_:b <http://x/p> "w"@en <http://x/g> .`,
		`<s> <p>`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParseNQuads(src)
	})
}

func rdfGraph(ts []rdf.Triple) *rdf.Graph {
	g := rdf.NewGraph()
	g.AddAll(ts)
	return g
}
