// Package turtle implements a parser and serializer for the W3C Turtle
// and N-Triples RDF syntaxes.
//
// The parser supports the Turtle constructs needed by real statistical
// linked-data dumps: prefix and base directives (both @-style and
// SPARQL-style), prefixed names, relative IRI resolution, the 'a'
// keyword, predicate and object lists, blank node property lists,
// collections, numeric/boolean literal sugar, language tags, datatyped
// literals, long (triple-quoted) strings, and comments.
package turtle

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIRIRef
	tokPName   // prefixed name (or bare prefix for directives)
	tokBlank   // _:label
	tokLiteral // string literal (value decoded)
	tokLangTag // @lang
	tokInteger
	tokDecimal
	tokDouble
	tokDot
	tokSemicolon
	tokComma
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokHatHat // ^^
	tokA      // keyword 'a'
	tokPrefixDir
	tokBaseDir
	tokSparqlPrefix
	tokSparqlBase
	tokTrue
	tokFalse
	tokAnon // []
)

type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes Turtle input held entirely in memory. Statistical
// dumps in this repo are generated in-process, so a simple string
// scanner is both adequate and fast.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("turtle: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) skipWhitespaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case ' ', '\t', '\r':
			l.pos++
		case '\n':
			l.pos++
			l.line++
		case '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipWhitespaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	start := l.line
	c := l.src[l.pos]
	switch c {
	case '<':
		return l.lexIRIRef()
	case '"', '\'':
		return l.lexString(c)
	case '.':
		// Distinguish statement dot from a leading decimal point
		// (".5" is a valid double in Turtle only with digits; we treat
		// a dot followed by a digit as numeric).
		if d := l.peekByteAt(1); d >= '0' && d <= '9' {
			return l.lexNumber()
		}
		l.pos++
		return token{kind: tokDot, text: ".", line: start}, nil
	case ';':
		l.pos++
		return token{kind: tokSemicolon, text: ";", line: start}, nil
	case ',':
		l.pos++
		return token{kind: tokComma, text: ",", line: start}, nil
	case '[':
		// Look ahead for ']' with only whitespace between: ANON.
		j := l.pos + 1
		for j < len(l.src) && (l.src[j] == ' ' || l.src[j] == '\t' || l.src[j] == '\n' || l.src[j] == '\r') {
			j++
		}
		if j < len(l.src) && l.src[j] == ']' {
			for k := l.pos; k < j; k++ {
				if l.src[k] == '\n' {
					l.line++
				}
			}
			l.pos = j + 1
			return token{kind: tokAnon, text: "[]", line: start}, nil
		}
		l.pos++
		return token{kind: tokLBracket, text: "[", line: start}, nil
	case ']':
		l.pos++
		return token{kind: tokRBracket, text: "]", line: start}, nil
	case '(':
		l.pos++
		return token{kind: tokLParen, text: "(", line: start}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, text: ")", line: start}, nil
	case '^':
		if l.peekByteAt(1) == '^' {
			l.pos += 2
			return token{kind: tokHatHat, text: "^^", line: start}, nil
		}
		return token{}, l.errf("unexpected '^'")
	case '@':
		return l.lexAtKeyword()
	case '_':
		if l.peekByteAt(1) == ':' {
			return l.lexBlank()
		}
		return token{}, l.errf("unexpected '_'")
	case '+', '-':
		return l.lexNumber()
	}
	if c >= '0' && c <= '9' {
		return l.lexNumber()
	}
	return l.lexName()
}

func (l *lexer) lexIRIRef() (token, error) {
	start := l.line
	l.pos++ // consume '<'
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '>':
			l.pos++
			if !utf8.ValidString(b.String()) {
				return token{}, l.errf("invalid UTF-8 in IRI reference")
			}
			return token{kind: tokIRIRef, text: b.String(), line: start}, nil
		case '\\':
			// \u and \U escapes permitted in IRIREF
			r, err := l.decodeUCharAt()
			if err != nil {
				return token{}, err
			}
			b.WriteRune(r)
		case '\n':
			return token{}, l.errf("newline in IRI reference")
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errf("unterminated IRI reference")
}

// decodeUCharAt decodes a \uXXXX or \UXXXXXXXX escape at l.pos (which
// points at the backslash) and advances past it.
func (l *lexer) decodeUCharAt() (rune, error) {
	if l.peekByteAt(1) == 'u' {
		if l.pos+6 > len(l.src) {
			return 0, l.errf("truncated \\u escape")
		}
		var r rune
		if _, err := fmt.Sscanf(l.src[l.pos+2:l.pos+6], "%04x", &r); err != nil {
			return 0, l.errf("bad \\u escape")
		}
		l.pos += 6
		return r, nil
	}
	if l.peekByteAt(1) == 'U' {
		if l.pos+10 > len(l.src) {
			return 0, l.errf("truncated \\U escape")
		}
		var r rune
		if _, err := fmt.Sscanf(l.src[l.pos+2:l.pos+10], "%08x", &r); err != nil {
			return 0, l.errf("bad \\U escape")
		}
		l.pos += 10
		return r, nil
	}
	return 0, l.errf("bad escape in IRI")
}

func (l *lexer) lexString(quote byte) (token, error) {
	start := l.line
	long := false
	if l.peekByteAt(1) == quote && l.peekByteAt(2) == quote {
		long = true
		l.pos += 3
	} else {
		l.pos++
	}
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			if !long {
				l.pos++
				if !utf8.ValidString(b.String()) {
					return token{}, l.errf("invalid UTF-8 in string literal")
				}
				return token{kind: tokLiteral, text: b.String(), line: start}, nil
			}
			if l.peekByteAt(1) == quote && l.peekByteAt(2) == quote {
				l.pos += 3
				if !utf8.ValidString(b.String()) {
					return token{}, l.errf("invalid UTF-8 in string literal")
				}
				return token{kind: tokLiteral, text: b.String(), line: start}, nil
			}
			b.WriteByte(c)
			l.pos++
			continue
		}
		if c == '\\' {
			esc := l.peekByteAt(1)
			switch esc {
			case 't':
				b.WriteByte('\t')
				l.pos += 2
			case 'n':
				b.WriteByte('\n')
				l.pos += 2
			case 'r':
				b.WriteByte('\r')
				l.pos += 2
			case 'b':
				b.WriteByte('\b')
				l.pos += 2
			case 'f':
				b.WriteByte('\f')
				l.pos += 2
			case '"', '\'', '\\':
				b.WriteByte(esc)
				l.pos += 2
			case 'u', 'U':
				r, err := l.decodeUCharAt()
				if err != nil {
					return token{}, err
				}
				b.WriteRune(r)
			default:
				return token{}, l.errf("bad string escape \\%c", esc)
			}
			continue
		}
		if c == '\n' {
			if !long {
				return token{}, l.errf("newline in single-line string")
			}
			l.line++
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, l.errf("unterminated string")
}

func (l *lexer) lexAtKeyword() (token, error) {
	start := l.line
	l.pos++ // '@'
	j := l.pos
	for j < len(l.src) && (isAlpha(l.src[j]) || l.src[j] == '-' || (l.src[j] >= '0' && l.src[j] <= '9')) {
		j++
	}
	word := l.src[l.pos:j]
	l.pos = j
	switch word {
	case "prefix":
		return token{kind: tokPrefixDir, text: "@prefix", line: start}, nil
	case "base":
		return token{kind: tokBaseDir, text: "@base", line: start}, nil
	}
	if word == "" {
		return token{}, l.errf("bare '@'")
	}
	return token{kind: tokLangTag, text: word, line: start}, nil
}

func (l *lexer) lexBlank() (token, error) {
	start := l.line
	l.pos += 2 // "_:"
	j := l.pos
	for j < len(l.src) && isPNChar(l.src[j]) {
		j++
	}
	if j == l.pos {
		return token{}, l.errf("empty blank node label")
	}
	label := l.src[l.pos:j]
	l.pos = j
	return token{kind: tokBlank, text: label, line: start}, nil
}

func (l *lexer) lexNumber() (token, error) {
	start := l.line
	j := l.pos
	if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
		j++
	}
	digits := 0
	for j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
		j++
		digits++
	}
	kind := tokInteger
	if j < len(l.src) && l.src[j] == '.' {
		// A dot is part of the number only if followed by a digit
		// (otherwise it terminates the statement).
		if j+1 < len(l.src) && l.src[j+1] >= '0' && l.src[j+1] <= '9' {
			kind = tokDecimal
			j++
			for j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
				j++
				digits++
			}
		}
	}
	if j < len(l.src) && (l.src[j] == 'e' || l.src[j] == 'E') {
		kind = tokDouble
		j++
		if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
			j++
		}
		expDigits := 0
		for j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
			j++
			expDigits++
		}
		if expDigits == 0 {
			return token{}, l.errf("malformed double exponent")
		}
	}
	if digits == 0 {
		return token{}, l.errf("malformed number")
	}
	text := l.src[l.pos:j]
	l.pos = j
	return token{kind: kind, text: text, line: start}, nil
}

// lexName scans a prefixed name, the 'a' keyword, boolean literals, or
// the SPARQL-style PREFIX/BASE directives.
func (l *lexer) lexName() (token, error) {
	start := l.line
	j := l.pos
	colon := -1
	for j < len(l.src) {
		c := l.src[j]
		if c == ':' {
			colon = j
			j++
			continue
		}
		if isPNChar(c) || c == '.' || c == '%' {
			if c >= 0x80 {
				r, size := utf8.DecodeRuneInString(l.src[j:])
				if r == utf8.RuneError && size == 1 {
					return token{}, l.errf("invalid UTF-8 in name")
				}
				j += size
				continue
			}
			j++
			continue
		}
		break
	}
	if j == l.pos {
		return token{}, l.errf("unexpected character %q", l.src[l.pos])
	}
	word := l.src[l.pos:j]
	// A trailing dot belongs to the statement terminator, not the name.
	for strings.HasSuffix(word, ".") && (colon < 0 || l.pos+len(word)-1 > colon) {
		word = word[:len(word)-1]
		j--
	}
	l.pos = j
	if colon < 0 {
		switch word {
		case "a":
			return token{kind: tokA, text: "a", line: start}, nil
		case "true":
			return token{kind: tokTrue, text: "true", line: start}, nil
		case "false":
			return token{kind: tokFalse, text: "false", line: start}, nil
		}
		switch strings.ToUpper(word) {
		case "PREFIX":
			return token{kind: tokSparqlPrefix, text: word, line: start}, nil
		case "BASE":
			return token{kind: tokSparqlBase, text: word, line: start}, nil
		}
		return token{}, l.errf("unexpected bare word %q", word)
	}
	return token{kind: tokPName, text: word, line: start}, nil
}

func isAlpha(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isPNChar(c byte) bool {
	return isAlpha(c) || (c >= '0' && c <= '9') || c == '_' || c == '-' || c >= 0x80
}
