package turtle

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/store"
)

// ParseNQuads parses an N-Quads document: N-Triples statements with an
// optional graph label before the final dot. It reuses the Turtle
// lexer, so comments and blank lines are handled; Turtle-only sugar
// (prefixes, lists, 'a') is rejected by the stricter statement shape.
func ParseNQuads(src string) ([]rdf.Quad, error) {
	lex := newLexer(src)
	var out []rdf.Quad
	p := &Parser{lex: lex, prefixes: rdf.NewPrefixMap()}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for p.tok.kind != tokEOF {
		s, err := p.subject()
		if err != nil {
			return nil, err
		}
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		o, err := p.object()
		if err != nil {
			return nil, err
		}
		var g rdf.Term
		if p.tok.kind != tokDot {
			gt, err := p.subject() // graph labels share the subject syntax
			if err != nil {
				return nil, fmt.Errorf("turtle: bad graph label: %w", err)
			}
			g = gt
		}
		if err := p.expect(tokDot, "'.'"); err != nil {
			return nil, err
		}
		out = append(out, rdf.NewQuad(s, pred, o, g))
	}
	return out, nil
}

// WriteNQuads serializes quads in canonical sorted N-Quads form.
func WriteNQuads(w io.Writer, quads []rdf.Quad) error {
	sorted := make([]rdf.Quad, len(quads))
	copy(sorted, quads)
	sort.Slice(sorted, func(i, j int) bool {
		if c := sorted[i].G.Compare(sorted[j].G); c != 0 {
			return c < 0
		}
		return sorted[i].Triple().Compare(sorted[j].Triple()) < 0
	})
	var b strings.Builder
	for _, q := range sorted {
		b.WriteString(q.String())
		b.WriteString(" .\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// DumpStore extracts every quad of a store (default graph first, then
// named graphs in term order).
func DumpStore(st *store.Store) []rdf.Quad {
	var out []rdf.Quad
	for _, t := range st.MatchAll(rdf.Term{}, rdf.Term{}, rdf.Term{}, rdf.Term{}) {
		out = append(out, rdf.NewQuad(t.S, t.P, t.O, rdf.Term{}))
	}
	for _, g := range st.GraphNames() {
		for _, t := range st.MatchAll(g, rdf.Term{}, rdf.Term{}, rdf.Term{}) {
			out = append(out, rdf.NewQuad(t.S, t.P, t.O, g))
		}
	}
	return out
}

// LoadQuads inserts quads into a store and returns how many were new.
func LoadQuads(st *store.Store, quads []rdf.Quad) int {
	return LoadQuadsP(st, quads, nil)
}

// loadChunk is how many quad inserts LoadQuadsP reports per progress
// step; fine-grained enough for a live rate over bulk files without
// taking the progress lock per quad.
const loadChunk = 1024

// LoadQuadsP is LoadQuads with chunked progress reporting into ph (nil
// reports nothing).
func LoadQuadsP(st *store.Store, quads []rdf.Quad, ph *obs.Phase) int {
	ph.Grow(int64(len(quads)))
	n := 0
	for i, q := range quads {
		if st.Insert(q) {
			n++
		}
		if (i+1)%loadChunk == 0 {
			ph.Add(loadChunk)
		}
	}
	ph.Add(int64(len(quads) % loadChunk))
	return n
}
