package turtle

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

func TestParseNQuadsBasic(t *testing.T) {
	quads, err := ParseNQuads(`
<http://x/s> <http://x/p> "v" .
<http://x/s> <http://x/p> <http://x/o> <http://x/g> .
_:b <http://x/p> "w"@en <http://x/g> .
# comment
<http://x/s> <http://x/q> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(quads) != 4 {
		t.Fatalf("quads = %d", len(quads))
	}
	if !quads[0].InDefaultGraph() {
		t.Error("first quad should be in default graph")
	}
	if quads[1].G != rdf.NewIRI("http://x/g") {
		t.Errorf("graph = %v", quads[1].G)
	}
	if !quads[2].S.IsBlank() {
		t.Error("blank subject lost")
	}
}

func TestParseNQuadsErrors(t *testing.T) {
	bad := []string{
		`<http://x/s> <http://x/p> .`,
		`<http://x/s> <http://x/p> "v" <http://x/g> <http://x/extra> .`,
		`<http://x/s> <http://x/p> "v"`,
	}
	for _, src := range bad {
		if _, err := ParseNQuads(src); err == nil {
			t.Errorf("ParseNQuads(%q) succeeded", src)
		}
	}
}

func TestStoreDumpLoadRoundTrip(t *testing.T) {
	st := store.New()
	g := rdf.NewIRI("http://x/g")
	st.Insert(rdf.NewQuad(rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p"), rdf.NewLiteral("def"), rdf.Term{}))
	st.Insert(rdf.NewQuad(rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p"), rdf.NewLiteral("named"), g))

	var b strings.Builder
	if err := WriteNQuads(&b, DumpStore(st)); err != nil {
		t.Fatal(err)
	}
	quads, err := ParseNQuads(b.String())
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	st2 := store.New()
	if n := LoadQuads(st2, quads); n != 2 {
		t.Fatalf("loaded %d", n)
	}
	if st2.Len(rdf.Term{}) != 1 || st2.Len(g) != 1 {
		t.Fatal("graph separation lost in round trip")
	}
}

// TestNQuadsRandomRoundTrip drives the quad serializer and parser with
// randomized terms, including every literal flavour and nasty strings.
func TestNQuadsRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	randTerm := func(allowLiteral bool) rdf.Term {
		if allowLiteral {
			switch rng.Intn(5) {
			case 0:
				return rdf.NewLiteral(randString(rng))
			case 1:
				return rdf.NewLangLiteral(randString(rng), []string{"en", "fr", "de-AT"}[rng.Intn(3)])
			case 2:
				return rdf.NewInteger(int64(rng.Intn(1000) - 500))
			case 3:
				return rdf.NewTypedLiteral(randString(rng), "http://x/dt")
			}
		}
		if rng.Intn(4) == 0 {
			return rdf.NewBlank(fmt.Sprintf("b%d", rng.Intn(10)))
		}
		return rdf.NewIRI(fmt.Sprintf("http://x/n%d", rng.Intn(20)))
	}
	for trial := 0; trial < 20; trial++ {
		st := store.New()
		for i := 0; i < 30; i++ {
			var g rdf.Term
			if rng.Intn(2) == 0 {
				g = rdf.NewIRI(fmt.Sprintf("http://g/%d", rng.Intn(3)))
			}
			s := randTerm(false)
			p := rdf.NewIRI(fmt.Sprintf("http://x/p%d", rng.Intn(5)))
			o := randTerm(true)
			st.Insert(rdf.NewQuad(s, p, o, g))
		}
		var b strings.Builder
		if err := WriteNQuads(&b, DumpStore(st)); err != nil {
			t.Fatal(err)
		}
		quads, err := ParseNQuads(b.String())
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, b.String())
		}
		st2 := store.New()
		LoadQuads(st2, quads)
		if st.TotalLen() != st2.TotalLen() {
			t.Fatalf("trial %d: %d quads -> %d after round trip", trial, st.TotalLen(), st2.TotalLen())
		}
		// Every original quad must be present.
		for _, q := range DumpStore(st) {
			found := false
			for _, q2 := range DumpStore(st2) {
				if q == q2 {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: quad %v lost", trial, q)
			}
		}
	}
}

func randString(rng *rand.Rand) string {
	alphabet := []rune(`abc "\'éλ🎲` + "\n\t")
	n := rng.Intn(8)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(alphabet[rng.Intn(len(alphabet))])
	}
	return b.String()
}
