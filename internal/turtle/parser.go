package turtle

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/rdf"
)

// Parser parses Turtle documents into rdf.Triple values.
type Parser struct {
	lex      *lexer
	tok      token
	prefixes *rdf.PrefixMap
	base     string
	bnodeSeq int
	// emit receives each parsed triple.
	emit func(rdf.Triple) error
}

// Parse parses a complete Turtle document and returns its triples along
// with the prefix map accumulated from @prefix directives.
func Parse(src string) ([]rdf.Triple, *rdf.PrefixMap, error) {
	var out []rdf.Triple
	p := &Parser{
		lex:      newLexer(src),
		prefixes: rdf.NewPrefixMap(),
		emit: func(t rdf.Triple) error {
			return nil
		},
	}
	p.emit = func(t rdf.Triple) error {
		out = append(out, t)
		return nil
	}
	if err := p.run(); err != nil {
		return nil, nil, err
	}
	return out, p.prefixes, nil
}

// ParseGraph parses a Turtle document directly into a new rdf.Graph.
func ParseGraph(src string) (*rdf.Graph, error) {
	triples, _, err := Parse(src)
	if err != nil {
		return nil, err
	}
	g := rdf.NewGraph()
	g.AddAll(triples)
	return g, nil
}

// ParseNTriples parses an N-Triples document. N-Triples is a subset of
// Turtle, so the same parser applies; this wrapper exists for intent at
// call sites.
func ParseNTriples(src string) ([]rdf.Triple, error) {
	triples, _, err := Parse(src)
	return triples, err
}

func (p *Parser) run() error {
	if err := p.advance(); err != nil {
		return err
	}
	for p.tok.kind != tokEOF {
		if err := p.statement(); err != nil {
			return err
		}
	}
	return nil
}

func (p *Parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) expect(k tokenKind, what string) error {
	if p.tok.kind != k {
		return fmt.Errorf("turtle: line %d: expected %s, got %s", p.tok.line, what, p.tok)
	}
	return p.advance()
}

func (p *Parser) statement() error {
	switch p.tok.kind {
	case tokPrefixDir:
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.prefixDecl(); err != nil {
			return err
		}
		return p.expect(tokDot, "'.'")
	case tokBaseDir:
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.baseDecl(); err != nil {
			return err
		}
		return p.expect(tokDot, "'.'")
	case tokSparqlPrefix:
		if err := p.advance(); err != nil {
			return err
		}
		return p.prefixDecl() // no dot in SPARQL style
	case tokSparqlBase:
		if err := p.advance(); err != nil {
			return err
		}
		return p.baseDecl()
	default:
		if err := p.triples(); err != nil {
			return err
		}
		return p.expect(tokDot, "'.'")
	}
}

func (p *Parser) prefixDecl() error {
	if p.tok.kind != tokPName || !strings.HasSuffix(p.tok.text, ":") {
		return fmt.Errorf("turtle: line %d: expected prefix name ending in ':', got %s", p.tok.line, p.tok)
	}
	prefix := strings.TrimSuffix(p.tok.text, ":")
	if err := p.advance(); err != nil {
		return err
	}
	if p.tok.kind != tokIRIRef {
		return fmt.Errorf("turtle: line %d: expected namespace IRI, got %s", p.tok.line, p.tok)
	}
	p.prefixes.Bind(prefix, p.resolve(p.tok.text))
	return p.advance()
}

func (p *Parser) baseDecl() error {
	if p.tok.kind != tokIRIRef {
		return fmt.Errorf("turtle: line %d: expected base IRI, got %s", p.tok.line, p.tok)
	}
	p.base = p.resolve(p.tok.text)
	return p.advance()
}

// resolve resolves a possibly-relative IRI reference against the
// current base using simplified RFC 3986 merging adequate for data
// files (absolute IRIs pass through; fragments and relative paths are
// appended to the base).
func (p *Parser) resolve(ref string) string {
	if ref == "" {
		return p.base
	}
	if strings.Contains(ref, "://") || strings.HasPrefix(ref, "urn:") || strings.HasPrefix(ref, "mailto:") {
		return ref
	}
	if p.base == "" {
		return ref
	}
	if strings.HasPrefix(ref, "#") {
		if i := strings.Index(p.base, "#"); i >= 0 {
			return p.base[:i] + ref
		}
		return p.base + ref
	}
	if strings.HasPrefix(ref, "/") {
		// Resolve against authority root.
		if i := strings.Index(p.base, "://"); i >= 0 {
			rest := p.base[i+3:]
			if j := strings.Index(rest, "/"); j >= 0 {
				return p.base[:i+3+j] + ref
			}
			return p.base + ref
		}
		return ref
	}
	// Relative path: replace the final segment of the base.
	if i := strings.LastIndex(p.base, "/"); i >= 0 {
		return p.base[:i+1] + ref
	}
	return p.base + ref
}

func (p *Parser) triples() error {
	// subject can be an IRI, blank node, blank node property list, or
	// collection.
	switch p.tok.kind {
	case tokLBracket:
		subj, err := p.blankNodePropertyList()
		if err != nil {
			return err
		}
		// predicateObjectList is optional after a property list subject.
		if p.tok.kind == tokDot {
			return nil
		}
		return p.predicateObjectList(subj)
	case tokLParen:
		subj, err := p.collection()
		if err != nil {
			return err
		}
		return p.predicateObjectList(subj)
	default:
		subj, err := p.subject()
		if err != nil {
			return err
		}
		return p.predicateObjectList(subj)
	}
}

func (p *Parser) subject() (rdf.Term, error) {
	switch p.tok.kind {
	case tokIRIRef:
		t := rdf.NewIRI(p.resolve(p.tok.text))
		return t, p.advance()
	case tokPName:
		iri, err := p.prefixes.Expand(p.tok.text)
		if err != nil {
			return rdf.Term{}, fmt.Errorf("turtle: line %d: %v", p.tok.line, err)
		}
		return rdf.NewIRI(iri), p.advance()
	case tokBlank:
		t := rdf.NewBlank(p.tok.text)
		return t, p.advance()
	case tokAnon:
		t := p.freshBlank()
		return t, p.advance()
	default:
		return rdf.Term{}, fmt.Errorf("turtle: line %d: expected subject, got %s", p.tok.line, p.tok)
	}
}

func (p *Parser) predicate() (rdf.Term, error) {
	switch p.tok.kind {
	case tokA:
		return rdf.NewIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"), p.advance()
	case tokIRIRef:
		t := rdf.NewIRI(p.resolve(p.tok.text))
		return t, p.advance()
	case tokPName:
		iri, err := p.prefixes.Expand(p.tok.text)
		if err != nil {
			return rdf.Term{}, fmt.Errorf("turtle: line %d: %v", p.tok.line, err)
		}
		return rdf.NewIRI(iri), p.advance()
	default:
		return rdf.Term{}, fmt.Errorf("turtle: line %d: expected predicate, got %s", p.tok.line, p.tok)
	}
}

func (p *Parser) predicateObjectList(subj rdf.Term) error {
	for {
		pred, err := p.predicate()
		if err != nil {
			return err
		}
		if err := p.objectList(subj, pred); err != nil {
			return err
		}
		if p.tok.kind != tokSemicolon {
			return nil
		}
		// Consume runs of semicolons; a trailing semicolon before '.'
		// or ']' is legal.
		for p.tok.kind == tokSemicolon {
			if err := p.advance(); err != nil {
				return err
			}
		}
		if p.tok.kind == tokDot || p.tok.kind == tokRBracket {
			return nil
		}
	}
}

func (p *Parser) objectList(subj, pred rdf.Term) error {
	for {
		obj, err := p.object()
		if err != nil {
			return err
		}
		if err := p.emit(rdf.NewTriple(subj, pred, obj)); err != nil {
			return err
		}
		if p.tok.kind != tokComma {
			return nil
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
}

func (p *Parser) object() (rdf.Term, error) {
	switch p.tok.kind {
	case tokIRIRef:
		t := rdf.NewIRI(p.resolve(p.tok.text))
		return t, p.advance()
	case tokPName:
		iri, err := p.prefixes.Expand(p.tok.text)
		if err != nil {
			return rdf.Term{}, fmt.Errorf("turtle: line %d: %v", p.tok.line, err)
		}
		return rdf.NewIRI(iri), p.advance()
	case tokBlank:
		t := rdf.NewBlank(p.tok.text)
		return t, p.advance()
	case tokAnon:
		t := p.freshBlank()
		return t, p.advance()
	case tokLBracket:
		return p.blankNodePropertyList()
	case tokLParen:
		return p.collection()
	case tokLiteral:
		return p.literal()
	case tokInteger:
		t := rdf.NewTypedLiteral(p.tok.text, rdf.XSDInteger)
		return t, p.advance()
	case tokDecimal:
		t := rdf.NewTypedLiteral(p.tok.text, rdf.XSDDecimal)
		return t, p.advance()
	case tokDouble:
		t := rdf.NewTypedLiteral(p.tok.text, rdf.XSDDouble)
		return t, p.advance()
	case tokTrue:
		return rdf.NewBoolean(true), p.advance()
	case tokFalse:
		return rdf.NewBoolean(false), p.advance()
	default:
		return rdf.Term{}, fmt.Errorf("turtle: line %d: expected object, got %s", p.tok.line, p.tok)
	}
}

func (p *Parser) literal() (rdf.Term, error) {
	lex := p.tok.text
	if err := p.advance(); err != nil {
		return rdf.Term{}, err
	}
	switch p.tok.kind {
	case tokLangTag:
		t := rdf.NewLangLiteral(lex, p.tok.text)
		return t, p.advance()
	case tokHatHat:
		if err := p.advance(); err != nil {
			return rdf.Term{}, err
		}
		var dt string
		switch p.tok.kind {
		case tokIRIRef:
			dt = p.resolve(p.tok.text)
		case tokPName:
			iri, err := p.prefixes.Expand(p.tok.text)
			if err != nil {
				return rdf.Term{}, fmt.Errorf("turtle: line %d: %v", p.tok.line, err)
			}
			dt = iri
		default:
			return rdf.Term{}, fmt.Errorf("turtle: line %d: expected datatype IRI, got %s", p.tok.line, p.tok)
		}
		return rdf.NewTypedLiteral(lex, dt), p.advance()
	default:
		return rdf.NewLiteral(lex), nil
	}
}

func (p *Parser) blankNodePropertyList() (rdf.Term, error) {
	// current token is '['
	if err := p.advance(); err != nil {
		return rdf.Term{}, err
	}
	node := p.freshBlank()
	if err := p.predicateObjectList(node); err != nil {
		return rdf.Term{}, err
	}
	if p.tok.kind != tokRBracket {
		return rdf.Term{}, fmt.Errorf("turtle: line %d: expected ']', got %s", p.tok.line, p.tok)
	}
	return node, p.advance()
}

func (p *Parser) collection() (rdf.Term, error) {
	// current token is '('
	if err := p.advance(); err != nil {
		return rdf.Term{}, err
	}
	rdfFirst := rdf.NewIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#first")
	rdfRest := rdf.NewIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#rest")
	rdfNil := rdf.NewIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#nil")
	if p.tok.kind == tokRParen {
		return rdfNil, p.advance()
	}
	head := p.freshBlank()
	cur := head
	for {
		obj, err := p.object()
		if err != nil {
			return rdf.Term{}, err
		}
		if err := p.emit(rdf.NewTriple(cur, rdfFirst, obj)); err != nil {
			return rdf.Term{}, err
		}
		if p.tok.kind == tokRParen {
			if err := p.emit(rdf.NewTriple(cur, rdfRest, rdfNil)); err != nil {
				return rdf.Term{}, err
			}
			return head, p.advance()
		}
		next := p.freshBlank()
		if err := p.emit(rdf.NewTriple(cur, rdfRest, next)); err != nil {
			return rdf.Term{}, err
		}
		cur = next
	}
}

func (p *Parser) freshBlank() rdf.Term {
	p.bnodeSeq++
	return rdf.NewBlank(fmt.Sprintf("gen%d", p.bnodeSeq))
}

// ParseReader parses a Turtle document from an io.Reader. The document
// is read fully into memory first; statistical dumps at the scale this
// repository handles (hundreds of thousands of triples) fit comfortably.
func ParseReader(r io.Reader) ([]rdf.Triple, *rdf.PrefixMap, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("turtle: reading input: %w", err)
	}
	return Parse(string(data))
}
