package turtle

import (
	"io"
	"strings"
	"testing"

	"repro/internal/rdf"
)

func mustParse(t *testing.T, src string) []rdf.Triple {
	t.Helper()
	ts, _, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return ts
}

func TestParseBasicTriple(t *testing.T) {
	ts := mustParse(t, `<http://x/s> <http://x/p> <http://x/o> .`)
	if len(ts) != 1 {
		t.Fatalf("got %d triples", len(ts))
	}
	want := rdf.NewTriple(rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p"), rdf.NewIRI("http://x/o"))
	if ts[0] != want {
		t.Fatalf("got %v", ts[0])
	}
}

func TestParsePrefixes(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
@prefix : <http://default.org/> .
ex:s ex:p :o .`
	ts := mustParse(t, src)
	if len(ts) != 1 {
		t.Fatalf("got %d triples", len(ts))
	}
	if ts[0].S.Value != "http://example.org/s" {
		t.Errorf("subject = %s", ts[0].S.Value)
	}
	if ts[0].O.Value != "http://default.org/o" {
		t.Errorf("object = %s", ts[0].O.Value)
	}
}

func TestParseSparqlStyleDirectives(t *testing.T) {
	src := `
PREFIX ex: <http://example.org/>
BASE <http://base.org/dir/>
ex:s ex:p <leaf> .`
	ts := mustParse(t, src)
	if ts[0].O.Value != "http://base.org/dir/leaf" {
		t.Errorf("object = %s", ts[0].O.Value)
	}
}

func TestParseAKeywordAndLists(t *testing.T) {
	src := `
@prefix ex: <http://x/> .
ex:s a ex:T ;
     ex:p ex:o1 , ex:o2 ;
     ex:q "lit" .`
	ts := mustParse(t, src)
	if len(ts) != 4 {
		t.Fatalf("got %d triples, want 4", len(ts))
	}
	if ts[0].P.Value != "http://www.w3.org/1999/02/22-rdf-syntax-ns#type" {
		t.Errorf("a keyword not expanded: %s", ts[0].P.Value)
	}
}

func TestParseLiterals(t *testing.T) {
	src := `
@prefix x: <http://x/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
x:s x:a "plain" ;
    x:b "french"@fr ;
    x:c "7"^^xsd:integer ;
    x:d 42 ;
    x:e -3.25 ;
    x:f 1.5e3 ;
    x:g true ;
    x:h false ;
    x:i """long
string""" .`
	ts := mustParse(t, src)
	byPred := map[string]rdf.Term{}
	for _, tr := range ts {
		byPred[tr.P.Value] = tr.O
	}
	check := func(p string, want rdf.Term) {
		t.Helper()
		if got := byPred["http://x/"+p]; got != want {
			t.Errorf("%s = %v, want %v", p, got, want)
		}
	}
	check("a", rdf.NewLiteral("plain"))
	check("b", rdf.NewLangLiteral("french", "fr"))
	check("c", rdf.NewTypedLiteral("7", rdf.XSDInteger))
	check("d", rdf.NewTypedLiteral("42", rdf.XSDInteger))
	check("e", rdf.NewTypedLiteral("-3.25", rdf.XSDDecimal))
	check("f", rdf.NewTypedLiteral("1.5e3", rdf.XSDDouble))
	check("g", rdf.NewBoolean(true))
	check("h", rdf.NewBoolean(false))
	check("i", rdf.NewLiteral("long\nstring"))
}

func TestParseStringEscapes(t *testing.T) {
	ts := mustParse(t, `<http://x/s> <http://x/p> "tab\there \"quote\" A" .`)
	if got := ts[0].O.Value; got != "tab\there \"quote\" A" {
		t.Fatalf("escapes decoded to %q", got)
	}
}

func TestParseBlankNodes(t *testing.T) {
	src := `
@prefix x: <http://x/> .
_:b1 x:p _:b2 .
x:s x:q [ x:r "inner" ; x:t "inner2" ] .
x:s x:u [] .`
	ts := mustParse(t, src)
	if len(ts) != 5 {
		t.Fatalf("got %d triples, want 5", len(ts))
	}
	if !ts[0].S.IsBlank() || ts[0].S.Value != "b1" {
		t.Errorf("labelled blank mishandled: %v", ts[0].S)
	}
	// the property-list blank node must appear both as object of x:q and
	// subject of x:r
	var qObj rdf.Term
	for _, tr := range ts {
		if tr.P.Value == "http://x/q" {
			qObj = tr.O
		}
	}
	if qObj.IsZero() || !qObj.IsBlank() {
		t.Fatalf("x:q object = %v", qObj)
	}
	found := false
	for _, tr := range ts {
		if tr.S == qObj && tr.P.Value == "http://x/r" {
			found = true
		}
	}
	if !found {
		t.Error("inner blank node triples not linked")
	}
}

func TestParseBlankPropertyListAsSubject(t *testing.T) {
	src := `
@prefix x: <http://x/> .
[ x:p "v" ] x:q "w" .`
	ts := mustParse(t, src)
	if len(ts) != 2 {
		t.Fatalf("got %d triples, want 2", len(ts))
	}
	if ts[0].S != ts[1].S {
		t.Error("subject blank node must be shared")
	}
}

func TestParseCollection(t *testing.T) {
	src := `
@prefix x: <http://x/> .
x:s x:p ( x:a x:b ) .
x:t x:q () .`
	ts := mustParse(t, src)
	// 2 list nodes x 2 triples + 2 statement triples = 6
	if len(ts) != 6 {
		t.Fatalf("got %d triples, want 6", len(ts))
	}
	nilIRI := "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil"
	sawNil := false
	for _, tr := range ts {
		if tr.P.Value == "http://x/q" && tr.O.Value == nilIRI {
			sawNil = true
		}
	}
	if !sawNil {
		t.Error("empty collection must be rdf:nil")
	}
}

func TestParseComments(t *testing.T) {
	src := `
# leading comment
<http://x/s> <http://x/p> "v" . # trailing comment
# final`
	if got := len(mustParse(t, src)); got != 1 {
		t.Fatalf("got %d triples", got)
	}
}

func TestParseQBSnippetFromPaper(t *testing.T) {
	// The DSD fragment from Section II of the paper.
	src := `
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix dsd: <http://eurostat.linked-statistics.org/dsd/> .
@prefix sdmx-dimension: <http://purl.org/linked-data/sdmx/2009/dimension#> .
@prefix sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#> .
@prefix property: <http://eurostat.linked-statistics.org/property#> .

dsd:migr_asyappctzm rdf:type qb:DataStructureDefinition ;
  qb:component [ qb:dimension sdmx-dimension:refPeriod ] ;
  qb:component [ qb:dimension property:age ] ;
  qb:component [ qb:dimension property:citizen ] ;
  qb:component [ qb:measure sdmx-measure:obsValue ] .`
	ts := mustParse(t, src)
	// 1 type + 4 component links + 4 inner component triples = 9
	if len(ts) != 9 {
		t.Fatalf("got %d triples, want 9", len(ts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<http://x/s> <http://x/p> .`,               // missing object
		`<http://x/s> "lit" <http://x/o> .`,         // literal predicate
		`<unterminated`,                             // open IRI
		`<http://x/s> <http://x/p> "open .`,         // open string
		`nope:x <http://x/p> <http://x/o> .`,        // unknown prefix
		`<http://x/s> <http://x/p> <http://x/o>`,    // missing dot
		`@prefix ex <http://x/> .`,                  // missing colon
		`<http://x/s> <http://x/p> 1.5e .`,          // bad exponent
		`<http://x/s> <http://x/p> "v"^^"notiri" .`, // bad datatype
	}
	for _, src := range bad {
		if _, _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	src := `
@prefix x: <http://x/> .
x:s x:p "v" ; .`
	if got := len(mustParse(t, src)); got != 1 {
		t.Fatalf("got %d triples", got)
	}
}

func TestRoundTripThroughWriter(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:s a ex:Widget ;
    ex:label "Gadget"@en ;
    ex:count "5"^^xsd:integer ;
    ex:linked ex:t .
ex:t ex:label "Other" .`
	first := mustParse(t, src)
	g := rdf.NewGraph()
	g.AddAll(first)

	pm := rdf.NewPrefixMap()
	pm.Bind("ex", "http://example.org/")
	pm.Bind("xsd", "http://www.w3.org/2001/XMLSchema#")
	out := FormatGraph(g, pm)

	second := mustParse(t, out)
	g2 := rdf.NewGraph()
	g2.AddAll(second)
	if g.Len() != g2.Len() {
		t.Fatalf("round trip changed size: %d -> %d\n%s", g.Len(), g2.Len(), out)
	}
	for _, tr := range g.Triples() {
		if !g2.Has(tr) {
			t.Errorf("lost triple %v\noutput:\n%s", tr, out)
		}
	}
}

func TestWriterUsesAKeywordAndGrouping(t *testing.T) {
	g := rdf.NewGraph()
	s := rdf.NewIRI("http://example.org/s")
	g.Add(rdf.NewTriple(s, rdf.NewIRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"), rdf.NewIRI("http://example.org/T")))
	g.Add(rdf.NewTriple(s, rdf.NewIRI("http://example.org/p"), rdf.NewLiteral("a")))
	g.Add(rdf.NewTriple(s, rdf.NewIRI("http://example.org/p"), rdf.NewLiteral("b")))
	pm := rdf.NewPrefixMap()
	pm.Bind("ex", "http://example.org/")
	out := FormatGraph(g, pm)
	if !strings.Contains(out, " a ex:T") {
		t.Errorf("expected 'a' keyword in output:\n%s", out)
	}
	if !strings.Contains(out, `"a", "b"`) {
		t.Errorf("expected object list grouping in output:\n%s", out)
	}
	if strings.Count(out, "ex:s") != 1 {
		t.Errorf("subject should appear once:\n%s", out)
	}
}

func TestWriteNTriplesSorted(t *testing.T) {
	ts := []rdf.Triple{
		rdf.NewTriple(rdf.NewIRI("http://x/b"), rdf.NewIRI("http://x/p"), rdf.NewLiteral("2")),
		rdf.NewTriple(rdf.NewIRI("http://x/a"), rdf.NewIRI("http://x/p"), rdf.NewLiteral("1")),
	}
	var b strings.Builder
	if err := WriteNTriples(&b, ts); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "<http://x/a>") {
		t.Fatalf("unsorted or wrong output:\n%s", b.String())
	}
}

func TestParseGraphHelper(t *testing.T) {
	g, err := ParseGraph(`<http://x/s> <http://x/p> "v" .`)
	if err != nil || g.Len() != 1 {
		t.Fatalf("ParseGraph: %v len=%d", err, g.Len())
	}
	if _, err := ParseGraph(`broken`); err == nil {
		t.Error("ParseGraph must propagate errors")
	}
}

func TestParseNTriples(t *testing.T) {
	ts, err := ParseNTriples(`<http://x/s> <http://x/p> "v"@en .
<http://x/s> <http://x/q> _:b0 .`)
	if err != nil || len(ts) != 2 {
		t.Fatalf("ParseNTriples: %v, %d", err, len(ts))
	}
}

func TestBaseRelativeResolution(t *testing.T) {
	cases := []struct {
		base, ref, want string
	}{
		{"http://a/b/c", "d", "http://a/b/d"},
		{"http://a/b/c", "/d", "http://a/d"},
		{"http://a/b/c", "#f", "http://a/b/c#f"},
		{"http://a/b/c#x", "#f", "http://a/b/c#f"},
		{"http://a/b/", "http://other/x", "http://other/x"},
	}
	for _, c := range cases {
		src := "@base <" + c.base + "> .\n<s> <http://x/p> <" + c.ref + "> ."
		ts := mustParse(t, src)
		if got := ts[0].O.Value; got != c.want {
			t.Errorf("resolve(%q, %q) = %q, want %q", c.base, c.ref, got, c.want)
		}
	}
}

func TestParseReader(t *testing.T) {
	ts, pm, err := ParseReader(strings.NewReader(`
@prefix ex: <http://example.org/> .
ex:s ex:p "v" .`))
	if err != nil || len(ts) != 1 {
		t.Fatalf("ParseReader: %v, %d triples", err, len(ts))
	}
	if ns, ok := pm.Namespace("ex"); !ok || ns != "http://example.org/" {
		t.Fatalf("prefixes lost: %v", pm)
	}
	if _, _, err := ParseReader(failingReader{}); err == nil {
		t.Fatal("reader error must propagate")
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, io.ErrUnexpectedEOF }
