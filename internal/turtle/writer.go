package turtle

import (
	"io"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Writer serializes triples as Turtle, grouping by subject and using a
// prefix map to compact IRIs.
type Writer struct {
	w        io.Writer
	prefixes *rdf.PrefixMap
}

// NewWriter returns a Writer emitting to w with the given prefix map
// (nil for no prefixes).
func NewWriter(w io.Writer, prefixes *rdf.PrefixMap) *Writer {
	if prefixes == nil {
		prefixes = rdf.NewPrefixMap()
	}
	return &Writer{w: w, prefixes: prefixes}
}

// WriteGraph serializes the whole graph: prefix directives first, then
// triples grouped by subject with predicate lists.
func (wr *Writer) WriteGraph(g *rdf.Graph) error {
	return wr.WriteTriples(g.Triples())
}

// WriteTriples serializes a slice of triples.
func (wr *Writer) WriteTriples(ts []rdf.Triple) error {
	var b strings.Builder
	for _, p := range wr.prefixes.Prefixes() {
		ns, _ := wr.prefixes.Namespace(p)
		b.WriteString("@prefix ")
		b.WriteString(p)
		b.WriteString(": <")
		b.WriteString(ns)
		b.WriteString("> .\n")
	}
	if len(wr.prefixes.Prefixes()) > 0 {
		b.WriteString("\n")
	}

	// Group triples by subject preserving first-appearance order.
	order := make([]rdf.Term, 0)
	bySubject := make(map[rdf.Term][]rdf.Triple)
	for _, t := range ts {
		if _, ok := bySubject[t.S]; !ok {
			order = append(order, t.S)
		}
		bySubject[t.S] = append(bySubject[t.S], t)
	}

	for _, s := range order {
		group := bySubject[s]
		sort.SliceStable(group, func(i, j int) bool {
			if c := group[i].P.Compare(group[j].P); c != 0 {
				return c < 0
			}
			return group[i].O.Compare(group[j].O) < 0
		})
		b.WriteString(wr.term(s))
		b.WriteString(" ")
		for i, t := range group {
			if i > 0 {
				if t.P == group[i-1].P {
					b.WriteString(", ")
					b.WriteString(wr.term(t.O))
					continue
				}
				b.WriteString(" ;\n    ")
			}
			b.WriteString(wr.term(t.P))
			b.WriteString(" ")
			b.WriteString(wr.term(t.O))
		}
		b.WriteString(" .\n")
	}
	_, err := io.WriteString(wr.w, b.String())
	return err
}

func (wr *Writer) term(t rdf.Term) string {
	switch t.Kind {
	case rdf.KindIRI:
		if t.Value == "http://www.w3.org/1999/02/22-rdf-syntax-ns#type" {
			return "a"
		}
		if pn, ok := wr.prefixes.Compact(t.Value); ok {
			return pn
		}
		return "<" + t.Value + ">"
	case rdf.KindLiteral:
		if t.Lang == "" && t.Datatype != "" && t.Datatype != rdf.XSDString {
			if pn, ok := wr.prefixes.Compact(t.Datatype); ok {
				return strings.SplitN(t.String(), "^^", 2)[0] + "^^" + pn
			}
		}
		return t.String()
	default:
		return t.String()
	}
}

// WriteNTriples serializes triples in canonical N-Triples form, one
// statement per line, sorted for deterministic output.
func WriteNTriples(w io.Writer, ts []rdf.Triple) error {
	sorted := make([]rdf.Triple, len(ts))
	copy(sorted, ts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })
	var b strings.Builder
	for _, t := range sorted {
		b.WriteString(t.String())
		b.WriteString(" .\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// FormatGraph is a convenience returning the Turtle serialization of g
// as a string.
func FormatGraph(g *rdf.Graph, prefixes *rdf.PrefixMap) string {
	var b strings.Builder
	_ = NewWriter(&b, prefixes).WriteGraph(g)
	return b.String()
}
