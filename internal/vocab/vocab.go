// Package vocab centralizes the IRI constants of the vocabularies used
// by QB2OLAP: RDF(S), XSD, OWL, SKOS, the RDF Data Cube vocabulary (qb),
// its OLAP extension QB4OLAP (qb4o), the SDMX component namespaces, and
// the demo schema namespaces mirroring the paper's Eurostat use case.
package vocab

import "repro/internal/rdf"

// Namespace IRIs.
const (
	RDF  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFS = "http://www.w3.org/2000/01/rdf-schema#"
	XSD  = "http://www.w3.org/2001/XMLSchema#"
	OWL  = "http://www.w3.org/2002/07/owl#"
	SKOS = "http://www.w3.org/2004/02/skos/core#"

	QB   = "http://purl.org/linked-data/cube#"
	QB4O = "http://purl.org/qb4olap/cubes#"

	SDMXDimension = "http://purl.org/linked-data/sdmx/2009/dimension#"
	SDMXMeasure   = "http://purl.org/linked-data/sdmx/2009/measure#"
	SDMXAttribute = "http://purl.org/linked-data/sdmx/2009/attribute#"

	// Demo namespaces mirroring the paper's Eurostat example.
	EurostatData     = "http://eurostat.linked-statistics.org/data/"
	EurostatDSD      = "http://eurostat.linked-statistics.org/dsd/"
	EurostatProperty = "http://eurostat.linked-statistics.org/property#"
	EurostatDic      = "http://eurostat.linked-statistics.org/dic/"
	Schema           = "http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#"
	External         = "http://example.org/external/"
)

// RDF / RDFS terms.
var (
	RDFType  = rdf.NewIRI(RDF + "type")
	RDFFirst = rdf.NewIRI(RDF + "first")
	RDFRest  = rdf.NewIRI(RDF + "rest")
	RDFNil   = rdf.NewIRI(RDF + "nil")

	RDFSLabel    = rdf.NewIRI(RDFS + "label")
	RDFSComment  = rdf.NewIRI(RDFS + "comment")
	RDFSSeeAlso  = rdf.NewIRI(RDFS + "seeAlso")
	RDFSSubClass = rdf.NewIRI(RDFS + "subClassOf")
)

// SKOS terms used for level member hierarchies.
var (
	SKOSBroader   = rdf.NewIRI(SKOS + "broader")
	SKOSNarrower  = rdf.NewIRI(SKOS + "narrower")
	SKOSPrefLabel = rdf.NewIRI(SKOS + "prefLabel")
	SKOSNotation  = rdf.NewIRI(SKOS + "notation")
)

// OWL terms.
var (
	OWLSameAs = rdf.NewIRI(OWL + "sameAs")
)

// QB vocabulary terms.
var (
	QBDataStructureDefinition = rdf.NewIRI(QB + "DataStructureDefinition")
	QBDataSet                 = rdf.NewIRI(QB + "DataSet")
	QBObservation             = rdf.NewIRI(QB + "Observation")
	QBComponentSpecification  = rdf.NewIRI(QB + "ComponentSpecification")
	QBDimensionProperty       = rdf.NewIRI(QB + "DimensionProperty")
	QBMeasureProperty         = rdf.NewIRI(QB + "MeasureProperty")
	QBAttributeProperty       = rdf.NewIRI(QB + "AttributeProperty")

	QBStructure = rdf.NewIRI(QB + "structure")
	QBComponent = rdf.NewIRI(QB + "component")
	QBDimension = rdf.NewIRI(QB + "dimension")
	QBMeasure   = rdf.NewIRI(QB + "measure")
	QBAttribute = rdf.NewIRI(QB + "attribute")
	QBDataSetP  = rdf.NewIRI(QB + "dataSet")
	QBOrder     = rdf.NewIRI(QB + "order")
	QBConcept   = rdf.NewIRI(QB + "concept")
)

// QB4OLAP vocabulary terms.
var (
	QB4OLevelProperty     = rdf.NewIRI(QB4O + "LevelProperty")
	QB4OLevelAttribute    = rdf.NewIRI(QB4O + "LevelAttribute")
	QB4OHierarchyClass    = rdf.NewIRI(QB4O + "Hierarchy")
	QB4OHierarchyStep     = rdf.NewIRI(QB4O + "HierarchyStep")
	QB4OLevelMemberClass  = rdf.NewIRI(QB4O + "LevelMember")
	QB4OAggregateFunction = rdf.NewIRI(QB4O + "AggregateFunction")

	QB4OLevel              = rdf.NewIRI(QB4O + "level")
	QB4OCardinality        = rdf.NewIRI(QB4O + "cardinality")
	QB4OAggregateFunctionP = rdf.NewIRI(QB4O + "aggregateFunction")
	QB4OHasHierarchy       = rdf.NewIRI(QB4O + "hasHierarchy")
	QB4OInDimension        = rdf.NewIRI(QB4O + "inDimension")
	QB4OHasLevel           = rdf.NewIRI(QB4O + "hasLevel")
	QB4OInHierarchy        = rdf.NewIRI(QB4O + "inHierarchy")
	QB4OChildLevel         = rdf.NewIRI(QB4O + "childLevel")
	QB4OParentLevel        = rdf.NewIRI(QB4O + "parentLevel")
	QB4OPCCardinality      = rdf.NewIRI(QB4O + "pcCardinality")
	QB4OHasAttribute       = rdf.NewIRI(QB4O + "hasAttribute")
	QB4OMemberOf           = rdf.NewIRI(QB4O + "memberOf")
	QB4OInLevel            = rdf.NewIRI(QB4O + "inLevel")
	QB4ORollup             = rdf.NewIRI(QB4O + "rollup")

	// Cardinalities.
	QB4OOneToOne   = rdf.NewIRI(QB4O + "OneToOne")
	QB4OOneToMany  = rdf.NewIRI(QB4O + "OneToMany")
	QB4OManyToOne  = rdf.NewIRI(QB4O + "ManyToOne")
	QB4OManyToMany = rdf.NewIRI(QB4O + "ManyToMany")

	// Aggregate functions.
	QB4OSum   = rdf.NewIRI(QB4O + "sum")
	QB4OAvg   = rdf.NewIRI(QB4O + "avg")
	QB4OCount = rdf.NewIRI(QB4O + "count")
	QB4OMin   = rdf.NewIRI(QB4O + "min")
	QB4OMax   = rdf.NewIRI(QB4O + "max")
)

// SDMX component terms used by the Eurostat cube.
var (
	SDMXRefPeriod = rdf.NewIRI(SDMXDimension + "refPeriod")
	SDMXFreq      = rdf.NewIRI(SDMXDimension + "freq")
	SDMXObsValue  = rdf.NewIRI(SDMXMeasure + "obsValue")
)

// Prefixes returns a prefix map with the standard bindings used across
// the repository's Turtle output and SPARQL generation.
func Prefixes() *rdf.PrefixMap {
	m := rdf.NewPrefixMap()
	m.Bind("rdf", RDF)
	m.Bind("rdfs", RDFS)
	m.Bind("xsd", XSD)
	m.Bind("owl", OWL)
	m.Bind("skos", SKOS)
	m.Bind("qb", QB)
	m.Bind("qb4o", QB4O)
	m.Bind("sdmx-dimension", SDMXDimension)
	m.Bind("sdmx-measure", SDMXMeasure)
	m.Bind("sdmx-attribute", SDMXAttribute)
	m.Bind("data", EurostatData)
	m.Bind("dsd", EurostatDSD)
	m.Bind("property", EurostatProperty)
	m.Bind("dic", EurostatDic)
	m.Bind("schema", Schema)
	m.Bind("ex", External)
	return m
}
