package vocab

import (
	"strings"
	"testing"
)

func TestPrefixesCoverVocabularies(t *testing.T) {
	m := Prefixes()
	for prefix, ns := range map[string]string{
		"rdf":  RDF,
		"rdfs": RDFS,
		"xsd":  XSD,
		"skos": SKOS,
		"qb":   QB,
		"qb4o": QB4O,
	} {
		got, ok := m.Namespace(prefix)
		if !ok || got != ns {
			t.Errorf("prefix %s = %q, want %q", prefix, got, ns)
		}
	}
}

func TestTermNamespaces(t *testing.T) {
	cases := []struct {
		iri, ns string
	}{
		{QBDimension.Value, QB},
		{QB4OLevel.Value, QB4O},
		{QB4ORollup.Value, QB4O},
		{SKOSBroader.Value, SKOS},
		{RDFType.Value, RDF},
		{SDMXObsValue.Value, SDMXMeasure},
		{SDMXRefPeriod.Value, SDMXDimension},
	}
	for _, c := range cases {
		if !strings.HasPrefix(c.iri, c.ns) {
			t.Errorf("%s not in namespace %s", c.iri, c.ns)
		}
	}
}

func TestPaperVocabularyShape(t *testing.T) {
	// The exact property names the paper's snippets use.
	wants := []struct{ term, local string }{
		{QB4OLevel.Value, "level"},
		{QB4OCardinality.Value, "cardinality"},
		{QB4OAggregateFunctionP.Value, "aggregateFunction"},
		{QB4OHasHierarchy.Value, "hasHierarchy"},
		{QB4OInDimension.Value, "inDimension"},
		{QB4OHasLevel.Value, "hasLevel"},
		{QB4OInHierarchy.Value, "inHierarchy"},
		{QB4OChildLevel.Value, "childLevel"},
		{QB4OParentLevel.Value, "parentLevel"},
		{QB4OPCCardinality.Value, "pcCardinality"},
		{QB4OHasAttribute.Value, "hasAttribute"},
		{QB4OManyToOne.Value, "ManyToOne"},
		{QB4OSum.Value, "sum"},
	}
	for _, w := range wants {
		if !strings.HasSuffix(w.term, "#"+w.local) {
			t.Errorf("%s should end in #%s", w.term, w.local)
		}
	}
}
