package repro

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/demo"
	"repro/internal/ql"
	"repro/internal/sparql"
)

// TestPlannerCorpusByteIdentical is the planner's acceptance gate for
// correctness: every QL program under queries/, through both SPARQL
// translations, at engine parallelism 1, 4, and 8, must return
// byte-identical JSON result tables with the planner on and off. Join
// reordering and filter pushdown may only change the evaluation order,
// never the rows, their order (ORDER BY pins it), or their
// serialization. The suite runs under -race via `make race`, so this
// doubles as a data-race check on plan sharing across the worker pool.
func TestPlannerCorpusByteIdentical(t *testing.T) {
	env, err := demo.Build(configFor(5000))
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob("queries/*.ql")
	if err != nil || len(files) == 0 {
		t.Fatalf("no QL programs found under queries/: %v", err)
	}
	for _, par := range []int{1, 4, 8} {
		on := sparql.NewEngine(env.Store, sparql.WithParallelism(par))
		off := sparql.NewEngine(env.Store, sparql.WithParallelism(par), sparql.WithPlanner(false))
		for _, file := range files {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			p, err := ql.Prepare(string(src), env.Schema)
			if err != nil {
				t.Fatalf("%s: %v", file, err)
			}
			for _, q := range []struct{ variant, text string }{
				{"direct", p.Translation.Direct},
				{"alternative", p.Translation.Alternative},
			} {
				t.Run(fmt.Sprintf("par=%d/%s/%s", par, filepath.Base(file), q.variant), func(t *testing.T) {
					resOn, err := on.QueryString(q.text)
					if err != nil {
						t.Fatalf("planner on: %v", err)
					}
					resOff, err := off.QueryString(q.text)
					if err != nil {
						t.Fatalf("planner off: %v", err)
					}
					jsonOn, err := resOn.MarshalJSON()
					if err != nil {
						t.Fatal(err)
					}
					jsonOff, err := resOff.MarshalJSON()
					if err != nil {
						t.Fatal(err)
					}
					if string(jsonOn) != string(jsonOff) {
						t.Errorf("planner on/off results differ (%d vs %d rows)",
							resOn.Len(), resOff.Len())
					}
				})
			}
		}
	}
}
