# Measure dicing: yearly continent cells with more than 10,000
# applications (a DICE over the aggregated measure, translated to
# HAVING in the direct query and an outer FILTER in the alternative).
PREFIX data: <http://eurostat.linked-statistics.org/data/>
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:asyl_appDim);
$C4 := SLICE ($C3, schema:geoDim);
$C5 := ROLLUP ($C4, schema:citizenDim, schema:continent);
$C6 := ROLLUP ($C5, schema:refPeriodDim, schema:year);
$C7 := DICE ($C6, sdmx-measure:obsValue > 10000);
