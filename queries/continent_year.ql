# Applications by continent of citizenship and year (a two-axis cube,
# nice with `qb2olap query -pivot`).
PREFIX data: <http://eurostat.linked-statistics.org/data/>
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:sexDim);
$C2 := SLICE ($C1, schema:ageDim);
$C3 := SLICE ($C2, schema:asyl_appDim);
$C4 := SLICE ($C3, schema:geoDim);
$C5 := ROLLUP ($C4, schema:citizenDim, schema:continent);
$C6 := ROLLUP ($C5, schema:refPeriodDim, schema:year);
