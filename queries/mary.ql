# The demonstration query from Section IV of the QB2OLAP paper:
# the number of asylum applications submitted by year by citizens from
# African countries whose destination is France.
PREFIX data: <http://eurostat.linked-statistics.org/data/>
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>
PREFIX property: <http://eurostat.linked-statistics.org/property#>
QUERY
$C1 := SLICE (data:migr_asyappctzm, schema:asyl_appDim);
$C2 := SLICE ($C1, schema:sexDim);
$C3 := SLICE ($C2, schema:ageDim);
$C4 := ROLLUP ($C3, schema:citizenDim, schema:continent);
$C5 := ROLLUP ($C4, schema:refPeriodDim, schema:year);
$C6 := DICE ($C5, (schema:citizenDim|schema:continent|schema:continentName = "Africa"));
$C7 := DICE ($C6, schema:geoDim|property:geo|schema:countryName = "France");
