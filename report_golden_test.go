package repro

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/demo"
	"repro/internal/endpoint"
	"repro/internal/enrich"
	"repro/internal/eurostat"
	"repro/internal/obs"
	"repro/internal/ql"
	"repro/internal/sparql"
)

// TestRunReportGoldenDemoEnrich drives the repository's demo enrichment
// script (queries/demo.enrich) with a Progress reporter attached and
// pins the canonical run report — phase names, step counts, and
// counters, with every timing zeroed — against a golden file. The demo
// generator is deterministic (seed 42), so any drift in the report
// means the enrichment pipeline did different work: a changed number of
// SPARQL queries, discovery chunks, or generated triples.
func TestRunReportGoldenDemoEnrich(t *testing.T) {
	st, _ := eurostat.NewStore(configFor(5000))
	client := endpoint.NewLocal(st)

	prog := obs.NewProgress("enrich")
	opts := enrich.DefaultOptions()
	opts.Progress = prog
	sess, err := enrich.NewSession(client, eurostat.DSDIRI, opts)
	if err != nil {
		t.Fatal(err)
	}
	script, err := os.ReadFile(filepath.Join("queries", "demo.enrich"))
	if err != nil {
		t.Fatal(err)
	}
	if err := enrich.ApplyScript(sess, string(script)); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}

	got := string(prog.Report().Canonical().JSON())

	golden := filepath.Join("testdata", "runreport_demo.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run RunReportGolden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("run report drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestExplainEstimatesWithinOrderOfMagnitude checks the estimated-vs-
// actual EXPLAIN surface on the paper's demo query: every JOIN operator
// must carry an estimate, and wherever the operator actually produced
// rows the estimate must land within one order of magnitude. The demo
// cube's statistics are exact (they are recomputed from the loaded
// data), so only the independence assumption separates est from act.
func TestExplainEstimatesWithinOrderOfMagnitude(t *testing.T) {
	env, err := demo.Build(configFor(5000))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ql.Prepare(demoQuery, env.Schema)
	if err != nil {
		t.Fatal(err)
	}
	eng := sparql.NewEngine(env.Store, sparql.WithParallelism(1))
	_, tr, err := eng.QueryTracedString(p.Translation.Direct)
	if err != nil {
		t.Fatal(err)
	}

	joins := 0
	tr.Root.Visit(func(s *obs.Span) {
		if s.Op != "JOIN" {
			return
		}
		joins++
		if !s.Estimated() {
			t.Errorf("JOIN %q has no estimate", s.Detail)
			return
		}
		if s.Out == 0 {
			return // an empty result is always "within" any bound
		}
		est, act := float64(s.Est), float64(s.Out)
		if est <= 0 {
			t.Errorf("JOIN %q: est=%d for act=%d", s.Detail, s.Est, s.Out)
			return
		}
		if ratio := est / act; ratio > 10 || ratio < 0.1 {
			t.Errorf("JOIN %q: est=%d act=%d off by more than 10x", s.Detail, s.Est, s.Out)
		}
	})
	if joins == 0 {
		t.Fatal("no JOIN spans in the trace")
	}
}
