package repro

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/demo"
	"repro/internal/ql"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// streamCancelSeed fixes the randomized cancel points so a run that
// exposes a slow cancellation path can be replayed.
const streamCancelSeed = 23

// TestStreamingCancellationCorpus cancels streamed evaluations of the
// whole query corpus at seeded random points and asserts the
// chunk-boundary cancellation contract: prompt return (<250ms from
// cancel), a cooperative *sparql.CanceledError, and no leaked
// goroutines. The pipeline is synchronous — there are no stage
// goroutines to leak by construction — so the leak check guards the
// parallel kernels the stages call within a chunk.
func TestStreamingCancellationCorpus(t *testing.T) {
	env, err := demo.Build(configFor(5000))
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob("queries/*.ql")
	if err != nil || len(files) == 0 {
		t.Fatalf("no QL programs under queries/: %v", err)
	}
	var queries []string
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ql.Prepare(string(src), env.Schema)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		queries = append(queries, p.Translation.Direct, p.Translation.Alternative)
	}

	// Chunk size 1 maximizes the number of chunk boundaries a cancel
	// can land on; parallelism 4 keeps the worker pool in play.
	eng := sparql.NewEngine(env.Store,
		sparql.WithParallelism(4), sparql.WithChunkSize(1))
	rng := rand.New(rand.NewSource(streamCancelSeed))
	before := runtime.NumGoroutine()

	canceled := 0
	var maxLat time.Duration
	for qi, query := range queries {
		// Uncanceled baseline: correctness anchor and the window the
		// cancel point is drawn from.
		start := time.Now()
		if _, err := eng.QueryStringContext(context.Background(), query); err != nil {
			t.Fatalf("query %d baseline: %v", qi, err)
		}
		full := time.Since(start)

		for round := 0; round < 2; round++ {
			delay := time.Duration(rng.Int63n(int64(full) + 1))
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := eng.QueryStringContext(ctx, query)
				done <- err
			}()
			time.Sleep(delay)
			cancelAt := time.Now()
			cancel()
			var runErr error
			select {
			case runErr = <-done:
			case <-time.After(5 * time.Second):
				t.Fatalf("query %d round %d: streamed evaluation ignored cancel", qi, round)
			}
			if lat := time.Since(cancelAt); lat > maxLat {
				maxLat = lat
			}
			if lat := time.Since(cancelAt); lat > 250*time.Millisecond {
				t.Errorf("query %d round %d: returned %v after cancel, want <250ms", qi, round, lat)
			}
			if runErr == nil {
				continue // finished before the cancel landed
			}
			canceled++
			var ce *sparql.CanceledError
			if !errors.As(runErr, &ce) || !errors.Is(runErr, context.Canceled) {
				t.Errorf("query %d round %d: error is not a cooperative cancel: %v", qi, round, runErr)
			}
		}
	}
	t.Logf("%d queries, %d mid-flight cancels, max cancel→return latency %v",
		len(queries), canceled, maxLat)
	if canceled == 0 {
		t.Log("no cancel landed mid-flight; corpus too fast for the drawn delays")
	}

	// Leak check: kernel workers must drain after canceled runs.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after canceled streamed runs: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamSelectCancelEveryBoundary drives StreamSelect directly and
// cancels at every possible chunk boundary of the heaviest corpus
// query, proving no boundary index leaks a held charge or hangs: the
// deterministic complement of the randomized test above.
func TestStreamSelectCancelEveryBoundary(t *testing.T) {
	env, err := demo.Build(configFor(2000))
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile("queries/mary.ql")
	if err != nil {
		t.Fatal(err)
	}
	p, err := ql.Prepare(string(src), env.Schema)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sparql.ParseQuery(p.Translation.Direct)
	if err != nil {
		t.Fatal(err)
	}
	eng := sparql.NewEngine(env.Store, sparql.WithChunkSize(64))

	// Count the boundaries once.
	total := 0
	err = eng.StreamSelect(context.Background(), q,
		func([]string) error { return nil },
		func([][]rdf.Term) error { total++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("query produced no chunks")
	}

	for at := 0; at < total; at++ {
		ctx, cancel := context.WithCancel(context.Background())
		seen := 0
		err := eng.StreamSelect(ctx, q,
			func([]string) error { return nil },
			func([][]rdf.Term) error {
				if seen == at {
					cancel()
				}
				seen++
				return nil
			})
		cancel()
		if at == total-1 && err == nil {
			// A cancel landing in the final chunk's callback may lose
			// the race with a clean EOF; full delivery is a valid
			// outcome there.
			continue
		}
		var ce *sparql.CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("cancel at boundary %d/%d: err = %v, want *CanceledError", at, total, err)
		}
	}
}
