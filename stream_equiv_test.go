package repro

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/demo"
	"repro/internal/ql"
	"repro/internal/sparql"
)

// TestStreamingCorpusByteIdentical is the streaming pipeline's
// acceptance gate for correctness, mirroring the planner gate: every
// query under queries/ — each QL program through both SPARQL
// translations, plus the raw .rq probes — must return byte-identical
// JSON result tables when evaluated through the chunked pipeline at
// chunk sizes 1 (every boundary exercised), 7 (misaligned boundaries),
// and 1024 (the default), at engine parallelism 1, 4, and 8, compared
// against the materialized evaluator. The suite runs under -race via
// `make race`, so it doubles as a data-race check on the kernels the
// pipeline shares with the materialized path.
func TestStreamingCorpusByteIdentical(t *testing.T) {
	env, err := demo.Build(configFor(5000))
	if err != nil {
		t.Fatal(err)
	}

	// Collect the corpus: both translations of every QL program, plus
	// every raw SPARQL probe.
	type probe struct{ name, text string }
	var probes []probe
	qlFiles, err := filepath.Glob("queries/*.ql")
	if err != nil || len(qlFiles) == 0 {
		t.Fatalf("no QL programs found under queries/: %v", err)
	}
	for _, file := range qlFiles {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ql.Prepare(string(src), env.Schema)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		probes = append(probes,
			probe{filepath.Base(file) + "/direct", p.Translation.Direct},
			probe{filepath.Base(file) + "/alternative", p.Translation.Alternative})
	}
	rqFiles, err := filepath.Glob("queries/*.rq")
	if err != nil || len(rqFiles) == 0 {
		t.Fatalf("no .rq probes found under queries/: %v", err)
	}
	for _, file := range rqFiles {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, probe{filepath.Base(file), string(src)})
	}

	for _, par := range []int{1, 4, 8} {
		base := sparql.NewEngine(env.Store,
			sparql.WithParallelism(par), sparql.WithChunkSize(0))
		for _, cs := range []int{1, 7, 1024} {
			eng := sparql.NewEngine(env.Store,
				sparql.WithParallelism(par), sparql.WithChunkSize(cs))
			for _, p := range probes {
				t.Run(fmt.Sprintf("par=%d/chunk=%d/%s", par, cs, p.name), func(t *testing.T) {
					want, err := base.QueryString(p.text)
					if err != nil {
						t.Fatalf("materialized: %v", err)
					}
					got, err := eng.QueryString(p.text)
					if err != nil {
						t.Fatalf("streaming: %v", err)
					}
					wj, err := want.MarshalJSON()
					if err != nil {
						t.Fatal(err)
					}
					gj, err := got.MarshalJSON()
					if err != nil {
						t.Fatal(err)
					}
					if string(wj) != string(gj) {
						t.Errorf("streamed result differs from materialized (%d vs %d rows)",
							got.Len(), want.Len())
					}
				})
			}
		}
	}
}
