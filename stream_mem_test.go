package repro

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/demo"
	"repro/internal/obs"
	"repro/internal/ql"
	"repro/internal/sparql"
)

// maryDirect prepares the paper's Mary query and returns its direct
// SPARQL translation — the memory-hungry form whose materialized
// evaluation peaks at ~182 MB of intermediates on the 80k cube
// (EXPERIMENTS.md A-resource).
func maryDirect(t *testing.T, env *demo.Enriched) string {
	t.Helper()
	src, err := os.ReadFile("queries/mary.ql")
	if err != nil {
		t.Fatal(err)
	}
	p, err := ql.Prepare(string(src), env.Schema)
	if err != nil {
		t.Fatal(err)
	}
	return p.Translation.Direct
}

// peakFor evaluates the query on an engine with a fresh account
// attached and reports the peak in-flight bytes it charged.
func peakFor(t *testing.T, env *demo.Enriched, query string, opts ...sparql.Option) int64 {
	t.Helper()
	e := sparql.NewEngine(env.Store, opts...)
	acct := obs.NewQueryAcct(nil, 0)
	ctx := sparql.WithQueryAcct(context.Background(), acct)
	res, err := e.QueryStringContext(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("empty result — the fixture or translation changed")
	}
	acct.Finish()
	return acct.Peak()
}

// TestStreamingBoundsMaryPeak is the tentpole's memory acceptance
// gate: the streamed evaluation of the direct Mary translation must
// hold at most 1/5 of the materialized path's peak in-flight bytes —
// the pipeline's footprint is stages × chunks plus the final table,
// not the 80k-row intermediate join.
func TestStreamingBoundsMaryPeak(t *testing.T) {
	obsCount := 80000
	minShrink := int64(5)
	if testing.Short() {
		// The small cube's final result dominates the footprint, so the
		// shrink factor is structurally smaller; keep a 2x floor as the
		// smoke-level regression tripwire.
		obsCount = 5000
		minShrink = 2
	}
	env, err := demo.Build(configFor(obsCount))
	if err != nil {
		t.Fatal(err)
	}
	query := maryDirect(t, env)

	matPeak := peakFor(t, env, query, sparql.WithChunkSize(0))
	streamPeak := peakFor(t, env, query, sparql.WithChunkSize(1024))
	t.Logf("obs=%d: materialized peak %.1f MB, streamed peak %.1f MB (%.1fx)",
		obsCount, float64(matPeak)/1e6, float64(streamPeak)/1e6,
		float64(matPeak)/float64(streamPeak))
	if streamPeak*minShrink > matPeak {
		t.Errorf("streamed peak %d not at least %dx below materialized peak %d",
			streamPeak, minShrink, matPeak)
	}
}

// TestStreamingFitsUnderBudget encodes the same bound as an admission
// decision: a per-query budget far below the materialized peak must
// reject the materialized run with a typed *MemLimitError and admit
// the streamed run of the same query. This is the -max-query-mem
// contract the streaming pipeline was built to honor.
func TestStreamingFitsUnderBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the 80k fixture for a meaningful budget gap")
	}
	env, err := demo.Build(configFor(80000))
	if err != nil {
		t.Fatal(err)
	}
	query := maryDirect(t, env)
	const budget = 40 << 20 // ~1/4.5 of the 182 MB materialized peak

	mat := sparql.NewEngine(env.Store, sparql.WithChunkSize(0), sparql.WithMaxQueryMem(budget))
	_, err = mat.QueryString(query)
	var mle *sparql.MemLimitError
	if !errors.As(err, &mle) {
		t.Fatalf("materialized run under %d-byte budget: err = %v, want *MemLimitError", int64(budget), err)
	}

	str := sparql.NewEngine(env.Store, sparql.WithChunkSize(1024), sparql.WithMaxQueryMem(budget))
	res, err := str.QueryString(query)
	if err != nil {
		t.Fatalf("streamed run under the same budget: %v", err)
	}
	if res.Len() == 0 {
		t.Fatal("streamed run returned no rows")
	}
}

// TestConcurrentStreamingUnderBudget runs concurrent streamed clients
// against a shared tracker, each under the per-query budget the
// materialized path cannot meet, and checks they all complete. This is
// the test-shaped version of BenchmarkConcurrentQuery's 64-client
// configuration: admission no longer has to choose between rejecting
// the Mary query and letting 64 × 182 MB pile up.
func TestConcurrentStreamingUnderBudget(t *testing.T) {
	obsCount := 80000
	clients := 16
	if testing.Short() {
		obsCount = 5000
		clients = 4
	}
	env, err := demo.Build(configFor(obsCount))
	if err != nil {
		t.Fatal(err)
	}
	query := maryDirect(t, env)
	tr := obs.NewResourceTracker()
	e := sparql.NewEngine(env.Store,
		sparql.WithChunkSize(1024),
		sparql.WithResources(tr),
		sparql.WithMaxQueryMem(40<<20))

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.QueryString(query)
			if err != nil {
				errs <- err
				return
			}
			if res.Len() == 0 {
				errs <- fmt.Errorf("empty result")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent streamed client: %v", err)
	}
	if tr.Inflight() != 0 {
		t.Errorf("tracker inflight = %d after all queries finished, want 0", tr.Inflight())
	}
	t.Logf("%d clients, process high water %.1f MB", clients, float64(tr.HighWater())/1e6)
}
