package repro

import (
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/demo"
	"repro/internal/endpoint"
	"repro/internal/obs"
	"repro/internal/ql"
	"repro/internal/sparql"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestExplainGoldenDemoQuery pins the EXPLAIN ANALYZE output of the
// paper's demo query (Section IV, the "Mary" query) against a golden
// file, end to end through the planner: the cost-based translation
// choice (the "plan:" line with its estimated cost) plus the operator
// tree in the planned join order. The outline omits wall times, and the
// demo generator is deterministic (seed 42), so the output — chosen
// translation, estimated costs, operators, pattern details, and every
// intermediate cardinality — must be byte-identical across runs.
// Parallelism 1 keeps worker annotations out of the tree; the plan
// itself is parallelism-independent.
func TestExplainGoldenDemoQuery(t *testing.T) {
	env, err := demo.Build(configFor(5000))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ql.Prepare(demoQuery, env.Schema)
	if err != nil {
		t.Fatal(err)
	}
	client := endpoint.NewLocal(env.Store, sparql.WithParallelism(1))
	sel := ql.Choose(client, p.Translation)
	if sel.Heuristic {
		t.Fatalf("planner-on local client fell back to heuristic selection: %s", sel)
	}
	queryText := p.Translation.Direct
	if sel.Variant == ql.Alternative {
		queryText = p.Translation.Alternative
	}
	res, tr, err := client.Engine.QueryTracedString(queryText)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("demo query returned no rows")
	}
	tr.Plan = sel.String()
	got := tr.Outline()

	golden := filepath.Join("testdata", "explain_mary.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run ExplainGolden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("EXPLAIN ANALYZE outline drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestTracingPreservesResults runs every QL program under queries/
// through both SPARQL translations twice — once on the untraced fast
// path and once traced — and requires identical result tables. Tracing
// is observation only; it must never change what a query returns.
func TestTracingPreservesResults(t *testing.T) {
	env, err := demo.Build(configFor(5000))
	if err != nil {
		t.Fatal(err)
	}
	eng := sparql.NewEngine(env.Store)

	files, err := filepath.Glob("queries/*.ql")
	if err != nil || len(files) == 0 {
		t.Fatalf("no QL programs found under queries/: %v", err)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ql.Prepare(string(src), env.Schema)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, q := range []struct{ variant, text string }{
			{"direct", p.Translation.Direct},
			{"alternative", p.Translation.Alternative},
		} {
			plain, err := eng.QueryString(q.text)
			if err != nil {
				t.Fatalf("%s/%s: %v", file, q.variant, err)
			}
			traced, tr, err := eng.QueryTracedString(q.text)
			if err != nil {
				t.Fatalf("%s/%s traced: %v", file, q.variant, err)
			}
			if !reflect.DeepEqual(plain, traced) {
				t.Errorf("%s/%s: traced results differ from untraced", file, q.variant)
			}
			if tr == nil || len(tr.Root.Children) == 0 {
				t.Errorf("%s/%s: empty trace", file, q.variant)
			}
			// Every span must have finished (Out set from its real row
			// flow; a span left unfinished keeps the zero start marker).
			tr.Root.Visit(func(s *obs.Span) {
				if s.Wall < 0 {
					t.Errorf("%s/%s: span %s has negative wall time", file, q.variant, s.Op)
				}
			})
		}
	}
}

// BenchmarkTracerOverhead measures the demo query with no tracer
// installed (the nil fast path — a single nil check per operator)
// against a fully traced evaluation, on the 20k-observation cube.
// EXPERIMENTS.md records the measured gap; the off case must stay
// within noise of the seed engine.
func BenchmarkTracerOverhead(b *testing.B) {
	env := enrichedEnv(b, demoScale)
	p, err := ql.Prepare(demoQuery, env.Schema)
	if err != nil {
		b.Fatal(err)
	}
	q, err := sparql.ParseQuery(p.Translation.Direct)
	if err != nil {
		b.Fatal(err)
	}
	for _, traced := range []bool{false, true} {
		name := "tracer=off"
		opts := []sparql.Option{}
		if traced {
			name = "tracer=on"
			opts = append(opts, sparql.WithTracer(obs.NewTracer(4)))
		}
		b.Run(name, func(b *testing.B) {
			eng := sparql.NewEngine(env.Store, opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Query(q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() == 0 {
					b.Fatal(fmt.Sprintf("no rows (%s)", name))
				}
			}
		})
	}
}

// TestStitchedTraceGoldenMaryHTTP pins the stitched client+server
// trace of the Mary query over real HTTP against a golden file: a
// Remote client forces tracing (SelectTraced), the server honors the
// propagated traceparent, and the returned tree must contain the
// client HTTP span with the server's full operator tree — byte-stable
// cardinalities included — nested under it. The HTTP span detail is
// path-only, so the golden file survives random listener ports.
func TestStitchedTraceGoldenMaryHTTP(t *testing.T) {
	env, err := demo.Build(configFor(5000))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ql.Prepare(demoQuery, env.Schema)
	if err != nil {
		t.Fatal(err)
	}
	srv := endpoint.NewServer(env.Store, sparql.WithParallelism(1))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := endpoint.NewRemote(ts.URL)
	res, tr, err := c.SelectTraced(p.Translation.Direct)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("demo query returned no rows")
	}
	if tr.ID == "" {
		t.Fatal("stitched trace has no trace ID")
	}
	if tr.Root.Op != "HTTP" {
		t.Fatalf("root span op = %s, want HTTP", tr.Root.Op)
	}
	got := tr.Outline()

	golden := filepath.Join("testdata", "trace_stitched_mary.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run StitchedTraceGolden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("stitched trace outline drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// BenchmarkSampledTracing measures always-on sampled tracing on the
// demo-scale cube: the Mary query with no tracer at all (the seed
// baseline), with a tracer but rate 0 (every query takes the unsampled
// fast path: one ID draw plus one hash, no span tree), the default 1%
// rate, and rate 1 (every query traced). EXPERIMENTS.md A-trace
// records the measured overhead; the acceptance bar is sample=0.01
// within 2% of sample=off.
func BenchmarkSampledTracing(b *testing.B) {
	cases := []struct {
		name string
		opts []sparql.Option
	}{
		{"sample=off", nil},
		{"sample=0", []sparql.Option{sparql.WithTracer(obs.NewTracer(4)), sparql.WithSampler(obs.NewSampler(0))}},
		{"sample=0.01", []sparql.Option{sparql.WithTracer(obs.NewTracer(4)), sparql.WithSampler(obs.NewSampler(0.01))}},
		{"sample=1", []sparql.Option{sparql.WithTracer(obs.NewTracer(4)), sparql.WithSampler(obs.NewSampler(1))}},
	}
	for _, scale := range []int{demoScale, 80000} {
		for _, c := range cases {
			b.Run(fmt.Sprintf("obs=%d/%s", scale, c.name), func(b *testing.B) {
				skipIfShort(b, scale)
				env := enrichedEnv(b, scale)
				p, err := ql.Prepare(demoQuery, env.Schema)
				if err != nil {
					b.Fatal(err)
				}
				q, err := sparql.ParseQuery(p.Translation.Direct)
				if err != nil {
					b.Fatal(err)
				}
				eng := sparql.NewEngine(env.Store, c.opts...)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := eng.Query(q)
					if err != nil {
						b.Fatal(err)
					}
					if res.Len() == 0 {
						b.Fatal("no rows")
					}
				}
			})
		}
	}
}

// BenchmarkConcurrentQuerySampled is BenchmarkConcurrentQuery's
// acceptance companion: 16 concurrent clients hammering the
// demo-scale cube through the in-process endpoint, with engine-level
// sampling off versus the default 1%. The two must stay within noise
// of each other (the sampler is one atomic-free hash per query; only
// the ~1% sampled queries build span trees).
func BenchmarkConcurrentQuerySampled(b *testing.B) {
	const scale = 80000
	skipIfShort(b, scale)
	env := enrichedEnv(b, scale)
	p, err := ql.Prepare(demoQuery, env.Schema)
	if err != nil {
		b.Fatal(err)
	}
	gmp := runtime.GOMAXPROCS(0)
	for _, rate := range []float64{-1, 0.01} {
		name := "sample=off"
		opts := []sparql.Option{sparql.WithParallelism(1)}
		if rate >= 0 {
			name = fmt.Sprintf("sample=%g", rate)
			opts = append(opts,
				sparql.WithTracer(obs.NewTracer(8)),
				sparql.WithSampler(obs.NewSampler(rate)))
		}
		b.Run(name, func(b *testing.B) {
			client := endpoint.NewLocal(env.Store, opts...)
			b.SetParallelism((16 + gmp - 1) / gmp)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					cube, err := ql.Execute(client, p.Translation, ql.Direct)
					if err != nil {
						b.Fatal(err)
					}
					if len(cube.Cells) == 0 {
						b.Fatal("empty cube")
					}
				}
			})
		})
	}
}
