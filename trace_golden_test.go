package repro

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/demo"
	"repro/internal/obs"
	"repro/internal/ql"
	"repro/internal/sparql"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestExplainGoldenDemoQuery pins the EXPLAIN ANALYZE operator tree of
// the paper's demo query (Section IV, the "Mary" query) against a
// golden file. The outline omits wall times, and the demo generator is
// deterministic (seed 42), so the tree — operators, pattern details,
// and every intermediate cardinality — must be byte-identical across
// runs. Parallelism 1 keeps worker annotations out of the tree; the
// plan itself is parallelism-independent.
func TestExplainGoldenDemoQuery(t *testing.T) {
	env, err := demo.Build(configFor(5000))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ql.Prepare(demoQuery, env.Schema)
	if err != nil {
		t.Fatal(err)
	}
	eng := sparql.NewEngine(env.Store, sparql.WithParallelism(1))
	res, tr, err := eng.QueryTracedString(p.Translation.Direct)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("demo query returned no rows")
	}
	got := tr.Outline()

	golden := filepath.Join("testdata", "explain_mary.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run ExplainGolden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("EXPLAIN ANALYZE outline drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestTracingPreservesResults runs every QL program under queries/
// through both SPARQL translations twice — once on the untraced fast
// path and once traced — and requires identical result tables. Tracing
// is observation only; it must never change what a query returns.
func TestTracingPreservesResults(t *testing.T) {
	env, err := demo.Build(configFor(5000))
	if err != nil {
		t.Fatal(err)
	}
	eng := sparql.NewEngine(env.Store)

	files, err := filepath.Glob("queries/*.ql")
	if err != nil || len(files) == 0 {
		t.Fatalf("no QL programs found under queries/: %v", err)
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ql.Prepare(string(src), env.Schema)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, q := range []struct{ variant, text string }{
			{"direct", p.Translation.Direct},
			{"alternative", p.Translation.Alternative},
		} {
			plain, err := eng.QueryString(q.text)
			if err != nil {
				t.Fatalf("%s/%s: %v", file, q.variant, err)
			}
			traced, tr, err := eng.QueryTracedString(q.text)
			if err != nil {
				t.Fatalf("%s/%s traced: %v", file, q.variant, err)
			}
			if !reflect.DeepEqual(plain, traced) {
				t.Errorf("%s/%s: traced results differ from untraced", file, q.variant)
			}
			if tr == nil || len(tr.Root.Children) == 0 {
				t.Errorf("%s/%s: empty trace", file, q.variant)
			}
			// Every span must have finished (Out set from its real row
			// flow; a span left unfinished keeps the zero start marker).
			tr.Root.Visit(func(s *obs.Span) {
				if s.Wall < 0 {
					t.Errorf("%s/%s: span %s has negative wall time", file, q.variant, s.Op)
				}
			})
		}
	}
}

// BenchmarkTracerOverhead measures the demo query with no tracer
// installed (the nil fast path — a single nil check per operator)
// against a fully traced evaluation, on the 20k-observation cube.
// EXPERIMENTS.md records the measured gap; the off case must stay
// within noise of the seed engine.
func BenchmarkTracerOverhead(b *testing.B) {
	env := enrichedEnv(b, demoScale)
	p, err := ql.Prepare(demoQuery, env.Schema)
	if err != nil {
		b.Fatal(err)
	}
	q, err := sparql.ParseQuery(p.Translation.Direct)
	if err != nil {
		b.Fatal(err)
	}
	for _, traced := range []bool{false, true} {
		name := "tracer=off"
		opts := []sparql.Option{}
		if traced {
			name = "tracer=on"
			opts = append(opts, sparql.WithTracer(obs.NewTracer(4)))
		}
		b.Run(name, func(b *testing.B) {
			eng := sparql.NewEngine(env.Store, opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Query(q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() == 0 {
					b.Fatal(fmt.Sprintf("no rows (%s)", name))
				}
			}
		})
	}
}
