package repro

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/demo"
	"repro/internal/obs"
	"repro/internal/ql"
	"repro/internal/sparql"
)

// TestWorkloadGoldenQueriesCorpus pins the canonical /workload view of
// the queries/ corpus against a golden file: every QL program's two
// SPARQL translations are evaluated with resource accounting on a
// deterministic demo store (seed 42, parallelism 1), folded into a
// workload registry, and rendered with the timing-dependent columns
// zeroed (Canonical). Shape hashes, per-shape counts, and the
// accounted rows/bytes are all deterministic for a fixed corpus, so
// this catches silent drift in the shape normalizer, the hash, and the
// byte cost model alike.
func TestWorkloadGoldenQueriesCorpus(t *testing.T) {
	env, err := demo.Build(configFor(5000))
	if err != nil {
		t.Fatal(err)
	}
	eng := sparql.NewEngine(env.Store, sparql.WithParallelism(1))

	files, err := filepath.Glob("queries/*.ql")
	if err != nil || len(files) == 0 {
		t.Fatalf("no QL programs found under queries/: %v", err)
	}
	wl := obs.NewWorkload(0)
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ql.Prepare(string(src), env.Schema)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, text := range []string{p.Translation.Direct, p.Translation.Alternative} {
			acct := obs.NewQueryAcct(nil, 0)
			ctx := sparql.WithQueryAcct(context.Background(), acct)
			if _, err := eng.QueryStringContext(ctx, text); err != nil {
				t.Fatalf("%s: %v", file, err)
			}
			acct.Finish()
			wl.Record(text, 0, acct.Rows(), acct.Bytes(), obs.OutcomeOK)
		}
	}
	got := wl.Snapshot().Canonical().RenderText()

	golden := filepath.Join("testdata", "workload_queries.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run WorkloadGolden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("workload view drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}
